//! Sorting on the congested clique (Problem 4.1, §4 of the paper).
//!
//! * [`SubsetSort`] — Algorithm 3: up to `≈ cap·|W|` keys sorted within a
//!   `|W| ≈ √n` group in **10 rounds** (Lemma 4.4), 8 when the final
//!   redistribution is skipped.
//! * `sort_keys` — Algorithm 4 / Theorem 4.5: every node holds up to `n`
//!   keys; after **37 rounds** node `i` holds the `i`-th batch of the
//!   global sorted order.
//! * Corollary 4.6 (duplicate-aware global indices), selection and mode
//!   queries, and the §6.3 small-key protocol build on top.

mod full_sort;
mod indexed;
mod keys;
mod small_keys;
mod subset_sort;

pub(crate) use full_sort::sort_with_exec;
pub use full_sort::{
    sort_keys, sort_with_spec, spec_for_sorting, FsMsg, FullSortMachine, SortOutcome,
};
pub use indexed::{
    global_indices, global_indices_with_spec, mode_query, mode_query_with_spec, select_rank,
    select_rank_with_spec, IndexOutcome, ModeOutcome, SelectOutcome,
};
pub(crate) use indexed::{global_indices_with_exec, mode_query_with_exec, select_rank_with_exec};
pub use keys::{IndexedBatch, KeyBatch, TaggedKey, KEYS_PER_BATCH};
pub(crate) use small_keys::small_key_census_with_exec;
pub use small_keys::{
    small_key_census, small_key_census_with_spec, spec_for_census, SmallKeyOutcome,
};
pub use subset_sort::{A3Msg, SubsetSort, SubsetSortOutput};
