//! Key types for Problem 4.1.

use cc_sim::util::word_bits;
use cc_sim::{NodeId, Payload};

/// A sort key tagged with its provenance.
///
/// The paper assumes w.l.o.g. that all keys are distinct, ordering
/// duplicates "lexicographically by key, node whose input contains the
/// key, and a local enumeration of identical keys at each node"
/// (footnote 5). `TaggedKey` is that triple; all comparisons inside the
/// sorting algorithms use it, so duplicate-heavy inputs stay balanced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaggedKey {
    /// The key value. Must be less than `u64::MAX` (reserved sentinel).
    pub key: u64,
    /// Node whose input contained the key.
    pub origin: NodeId,
    /// Index of the key within its origin's input.
    pub index_at_origin: u32,
}

impl TaggedKey {
    /// Tags a raw key.
    pub fn new(key: u64, origin: NodeId, index_at_origin: u32) -> Self {
        TaggedKey {
            key,
            origin,
            index_at_origin,
        }
    }
}

impl Payload for TaggedKey {
    fn size_bits(&self, n: usize) -> u64 {
        // key (two words) + origin + local index.
        4 * word_bits(n)
    }
}

/// Maximum keys bundled into one message (the paper's "bundling a constant
/// number of keys in each message").
pub const KEYS_PER_BATCH: usize = 4;

/// A bundle of up to [`KEYS_PER_BATCH`] tagged keys travelling as one
/// message payload.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyBatch {
    /// The bundled keys.
    pub keys: Vec<TaggedKey>,
}

impl KeyBatch {
    /// Bundles `keys` (at most [`KEYS_PER_BATCH`]).
    ///
    /// # Panics
    ///
    /// Panics if more than [`KEYS_PER_BATCH`] keys are supplied.
    pub fn new(keys: Vec<TaggedKey>) -> Self {
        assert!(keys.len() <= KEYS_PER_BATCH, "key batch too large");
        KeyBatch { keys }
    }

    /// Splits a key slice into batches.
    pub fn split(keys: &[TaggedKey]) -> Vec<KeyBatch> {
        keys.chunks(KEYS_PER_BATCH)
            .map(|c| KeyBatch::new(c.to_vec()))
            .collect()
    }
}

impl Payload for KeyBatch {
    fn size_bits(&self, n: usize) -> u64 {
        let w = word_bits(n);
        w + self.keys.iter().map(|k| k.size_bits(n)).sum::<u64>()
    }
}

/// A key bundle pinned to an absolute position in the global sorted order
/// (used by the order-preserving redistribution steps).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexedBatch {
    /// Global rank of `keys[0]`.
    pub start: u64,
    /// The bundled keys (consecutive ranks).
    pub keys: Vec<TaggedKey>,
}

impl Payload for IndexedBatch {
    fn size_bits(&self, n: usize) -> u64 {
        let w = word_bits(n);
        2 * w + self.keys.iter().map(|k| k.size_bits(n)).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_keys_order_by_value_then_provenance() {
        let a = TaggedKey::new(5, NodeId::new(1), 0);
        let b = TaggedKey::new(5, NodeId::new(2), 0);
        let c = TaggedKey::new(4, NodeId::new(9), 9);
        assert!(c < a);
        assert!(a < b);
    }

    #[test]
    fn batches_split_evenly() {
        let keys: Vec<TaggedKey> = (0..10)
            .map(|i| TaggedKey::new(i, NodeId::new(0), i as u32))
            .collect();
        let batches = KeyBatch::split(&keys);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].keys.len(), 4);
        assert_eq!(batches[2].keys.len(), 2);
    }

    #[test]
    #[should_panic(expected = "key batch too large")]
    fn rejects_oversized_batch() {
        let keys: Vec<TaggedKey> = (0..5)
            .map(|i| TaggedKey::new(i, NodeId::new(0), i as u32))
            .collect();
        let _ = KeyBatch::new(keys);
    }

    #[test]
    fn payload_sizes_scale_with_content() {
        let k = TaggedKey::new(1, NodeId::new(0), 0);
        let small = KeyBatch::new(vec![k]);
        let large = KeyBatch::new(vec![k; 4]);
        assert!(large.size_bits(64) > small.size_bits(64));
    }
}
