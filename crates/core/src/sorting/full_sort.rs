//! Algorithm 4 / Theorem 4.5: sorting up to `n²` keys in **37 rounds**.
//!
//! Round schedule (the paper's `0 + 1 + 8 + 2 + 0 + 16 + 8 + 2 = 37`):
//!
//! | rounds | step                                                        |
//! |--------|-------------------------------------------------------------|
//! | –      | Step 1 (local): sort input, select every `⌊√n⌋`-th key     |
//! | 1      | Step 2: the `i`-th selected key goes to node `i`            |
//! | 2–9    | Step 3: [`SubsetSort`] of the sample on the first group (8) |
//! | 10–11  | Step 4: delimiter dissemination via [`RelayBroadcast`] (2)  |
//! | –      | Step 5 (local): split input by the delimiters               |
//! | 12–27  | Step 6: route buckets to their groups — Theorem 3.7 (16)    |
//! | 28–35  | Step 7: parallel [`SubsetSort`] within every group (8)      |
//! | 36–37  | Step 8: order-preserving global redistribution (2)          |
//!
//! Step 8's two-round claim needs every node to know every node's
//! post-Step-7 holding; these counts exist inside each group four rounds
//! into Step 7, and are disseminated by a one-round all-to-all broadcast
//! *overlaid* on Step 7's traffic (one extra `O(log n)`-bit value per
//! edge in round 32) — see DESIGN.md. The redistribution itself is a
//! planning-free interval exchange: the key of global rank `r` travels
//! via relay `r mod n` to the node owning rank `r`, with at most one
//! message per edge in the second round.
//!
//! For general `n`, nodes are covered by `G = ⌈n/⌊√n⌋⌉` contiguous groups
//! (the last possibly smaller), with group 0 sorting the sample —
//! the paper's "work with subsets of size ⌊√n⌋" remark.

use crate::error::CoreError;
use crate::exec::Exec;
use crate::routing::{GMsg, RoutedMessage, RouterMachine};
use crate::sorting::keys::{KeyBatch, TaggedKey};
use crate::sorting::subset_sort::{A3Msg, SubsetSort};
use cc_primitives::{Driver, NodeGroup, RbMsg, RelayBroadcast};
use cc_sim::util::{isqrt, sort_cost, word_bits};
use cc_sim::{CliqueSpec, CommonScope, Ctx, Inbox, Metrics, NodeId, NodeMachine, Payload, Step};

/// Messages of the full sort.
#[derive(Clone, Debug)]
pub enum FsMsg {
    /// Step 2: a sampled key travelling to its sorter.
    Sample(TaggedKey),
    /// Step 3 traffic (sample sort on the first group).
    Sort1(A3Msg),
    /// Step 4 traffic (delimiter dissemination).
    Delim(RbMsg<TaggedKey>),
    /// Step 6 traffic (the embedded Theorem 3.7 router).
    Route(Box<GMsg<KeyBatch>>),
    /// Step 7 traffic (parallel group sorts).
    Sort2(A3Msg),
    /// Overlaid holding broadcast feeding Step 8.
    Holding(u64),
    /// Step 8, first leg: rank-addressed key to relay `rank mod n`.
    R8a {
        /// Global rank of the key.
        rank: u64,
        /// The key.
        key: TaggedKey,
    },
    /// Step 8, second leg: delivery to the rank's owner.
    R8b {
        /// Global rank of the key.
        rank: u64,
        /// The key.
        key: TaggedKey,
    },
    /// Tiny-`n` gather path.
    Gather(TaggedKey),
}

impl Payload for FsMsg {
    fn size_bits(&self, n: usize) -> u64 {
        let w = word_bits(n);
        4 + match self {
            FsMsg::Sample(k) | FsMsg::Gather(k) => k.size_bits(n),
            FsMsg::Sort1(m) | FsMsg::Sort2(m) => m.size_bits(n),
            FsMsg::Delim(m) => m.size_bits(n),
            FsMsg::Route(m) => m.size_bits(n),
            FsMsg::Holding(_) => 2 * w,
            FsMsg::R8a { key, .. } | FsMsg::R8b { key, .. } => 2 * w + key.size_bits(n),
        }
    }
}

/// Per-node result of the full sort.
#[derive(Clone, Debug)]
pub struct NodeBatch {
    /// This node's slice of the global sorted order.
    pub keys: Vec<TaggedKey>,
    /// Global rank of `keys[0]`.
    pub offset: u64,
}

/// Per-node machine of the 37-round sort (Theorem 4.5).
pub struct FullSortMachine {
    n: usize,
    /// Group side `⌊√n⌋` and count `⌈n/g⌉`.
    g: usize,
    num_groups: usize,
    me: NodeId,
    call: u32,
    keys: Vec<TaggedKey>,
    sort1: Option<SubsetSort>,
    rb: Option<RelayBroadcast<TaggedKey>>,
    delimiters: Vec<TaggedKey>,
    router: Option<RouterMachine<KeyBatch>>,
    sort2: Option<SubsetSort>,
    holdings: Vec<u64>,
    held: Vec<TaggedKey>,
    held_offset: u64,
    q: u64,
    total: u64,
    final_keys: Vec<(u64, TaggedKey)>,
    /// Tiny-`n` path: everything gathered locally.
    tiny: bool,
    gathered: Vec<TaggedKey>,
}

impl FullSortMachine {
    /// Total communication rounds of the sort (Theorem 4.5).
    pub const ROUNDS: u32 = 37;

    /// Builds the machine for node `me` holding `keys`.
    ///
    /// # Panics
    ///
    /// Panics if a key equals `u64::MAX` (reserved sentinel) or more than
    /// `n` keys are supplied.
    pub fn new(n: usize, me: NodeId, keys: Vec<u64>) -> Self {
        assert!(keys.len() <= n, "a node may hold at most n keys");
        assert!(
            keys.iter().all(|&k| k < u64::MAX),
            "u64::MAX is a reserved sentinel"
        );
        let mut tagged: Vec<TaggedKey> = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| TaggedKey::new(k, me, i as u32))
            .collect();
        crate::sortkey::sort_tagged(&mut tagged);
        let g = isqrt(n).max(1);
        FullSortMachine {
            n,
            g,
            num_groups: n.div_ceil(g),
            me,
            call: 0,
            keys: tagged,
            sort1: None,
            rb: None,
            delimiters: Vec::new(),
            router: None,
            sort2: None,
            holdings: vec![0; n],
            held: Vec::new(),
            held_offset: 0,
            q: 0,
            total: 0,
            final_keys: Vec::new(),
            tiny: n <= 3,
            gathered: Vec::new(),
        }
    }

    fn group_of(&self, v: usize) -> usize {
        v / self.g
    }

    fn group(&self, j: usize) -> NodeGroup {
        let start = j * self.g;
        NodeGroup::contiguous(start, self.g.min(self.n - start))
    }
}

fn demux(inbox: &mut Inbox<FsMsg>) -> Demux {
    let mut d = Demux::default();
    for (src, msg) in inbox.drain() {
        match msg {
            FsMsg::Sample(k) => d.samples.push((src, k)),
            FsMsg::Sort1(m) => d.sort1.push((src, m)),
            FsMsg::Delim(m) => d.delim.push((src, m)),
            FsMsg::Route(m) => d.route.push((src, *m)),
            FsMsg::Sort2(m) => d.sort2.push((src, m)),
            FsMsg::Holding(h) => d.holdings.push((src, h)),
            FsMsg::R8a { rank, key } => d.r8a.push((rank, key)),
            FsMsg::R8b { rank, key } => d.r8b.push((rank, key)),
            FsMsg::Gather(k) => d.gather.push(k),
        }
    }
    d
}

#[derive(Default)]
struct Demux {
    samples: Vec<(NodeId, TaggedKey)>,
    sort1: Vec<(NodeId, A3Msg)>,
    delim: Vec<(NodeId, RbMsg<TaggedKey>)>,
    route: Vec<(NodeId, GMsg<KeyBatch>)>,
    sort2: Vec<(NodeId, A3Msg)>,
    holdings: Vec<(NodeId, u64)>,
    r8a: Vec<(u64, TaggedKey)>,
    r8b: Vec<(u64, TaggedKey)>,
    gather: Vec<TaggedKey>,
}

impl NodeMachine for FullSortMachine {
    type Msg = FsMsg;
    type Output = NodeBatch;

    fn on_start(&mut self, ctx: &mut Ctx<'_, FsMsg>) {
        if self.tiny {
            // Gather path: broadcast the first key now, the rest in later
            // rounds.
            if let Some(k) = self.keys.first().copied() {
                ctx.broadcast(FsMsg::Gather(k));
            }
            return;
        }
        // Step 1 + Step 2: select every ⌈len/g⌉-th key; the i-th selected
        // key goes to node i.
        ctx.charge_work(sort_cost(self.keys.len()));
        ctx.note_mem(4 * self.keys.len() as u64);
        let stride = self.keys.len().div_ceil(self.g).max(1);
        let mut i = 0usize;
        for (idx, k) in self.keys.iter().enumerate() {
            if (idx + 1) % stride == 0 && i < self.g {
                ctx.send(NodeId::new(i), FsMsg::Sample(*k));
                i += 1;
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, FsMsg>, inbox: &mut Inbox<FsMsg>) -> Step<NodeBatch> {
        self.call += 1;
        let d = demux(inbox);
        if self.tiny {
            return self.tiny_round(ctx, d);
        }
        let call = self.call;
        match call {
            1 => {
                // Sorters (group 0) collect the sample and start Step 3.
                let sorters = self.group(0);
                let mut sort1 = if sorters.contains(self.me) {
                    let samples: Vec<TaggedKey> = d.samples.into_iter().map(|(_, k)| k).collect();
                    SubsetSort::member(
                        sorters.clone(),
                        self.me.index(),
                        samples,
                        self.n,
                        true,
                        CommonScope::new("sort.sample", 0),
                    )
                } else {
                    SubsetSort::relay_only(true)
                };
                let (base, outbox) = ctx.split();
                for (dst, m) in sort1.activate(base) {
                    outbox.push((dst, FsMsg::Sort1(m)));
                }
                self.sort1 = Some(sort1);
                Step::Continue
            }
            2..=9 => {
                let sort1 = self.sort1.as_mut().expect("sort1 active");
                let (base, outbox) = ctx.split();
                let step = sort1.on_round(base, d.sort1);
                for (dst, m) in step.sends {
                    outbox.push((dst, FsMsg::Sort1(m)));
                }
                if call < 9 {
                    debug_assert!(step.output.is_none());
                    return Step::Continue;
                }
                // Step 4: sorters locate the global delimiters (every
                // ⌈total/G⌉-th sample) in their held ranges and broadcast.
                let out = step.output.expect("sample sort completes at call 9");
                let mut items: Vec<(u32, TaggedKey)> = Vec::new();
                if out.total > 0 {
                    let stride = out.total.div_ceil(self.num_groups as u64).max(1);
                    let lo = out.offset;
                    let hi = out.offset + out.held.len() as u64;
                    let mut t = 1u64;
                    while t * stride - 1 < out.total && (t as usize) < self.num_groups {
                        let idx = t * stride - 1;
                        if idx >= lo && idx < hi {
                            items.push((t as u32 - 1, out.held[(idx - lo) as usize]));
                        }
                        t += 1;
                    }
                }
                let mut rb = RelayBroadcast::new(items);
                let (base, outbox) = ctx.split();
                for (dst, m) in rb.activate(base) {
                    outbox.push((dst, FsMsg::Delim(m)));
                }
                self.rb = Some(rb);
                Step::Continue
            }
            10 | 11 => {
                let rb = self.rb.as_mut().expect("delimiter broadcast active");
                let (base, outbox) = ctx.split();
                let step = rb.on_round(base, d.delim);
                for (dst, m) in step.sends {
                    outbox.push((dst, FsMsg::Delim(m)));
                }
                if call < 11 {
                    debug_assert!(step.output.is_none());
                    return Step::Continue;
                }
                let delims = step.output.expect("broadcast completes at call 11");
                self.delimiters = delims.into_iter().map(|(_, k)| k).collect();
                debug_assert!(self.delimiters.windows(2).all(|w| w[0] < w[1]));
                // Step 5 (local): split my keys by the delimiters; Step 6:
                // stripe each bucket across its destination group, bundle
                // into batches, and hand everything to an embedded router.
                let mut buckets: Vec<Vec<TaggedKey>> = vec![Vec::new(); self.num_groups];
                let mut b = 0usize;
                for k in std::mem::take(&mut self.keys) {
                    while b < self.delimiters.len() && k > self.delimiters[b] {
                        b += 1;
                    }
                    buckets[b].push(k);
                }
                ctx.charge_work(buckets.iter().map(|x| x.len() as u64).sum());
                let mut msgs: Vec<RoutedMessage<KeyBatch>> = Vec::new();
                let mut seq = vec![0u32; self.n];
                for (j, bucket) in buckets.into_iter().enumerate() {
                    let group = self.group(j);
                    let w = group.len();
                    let mut per_member: Vec<Vec<TaggedKey>> = vec![Vec::new(); w];
                    for (p, k) in bucket.into_iter().enumerate() {
                        per_member[(p + self.me.index()) % w].push(k);
                    }
                    for (u, keys) in per_member.into_iter().enumerate() {
                        let dst = group.member(u);
                        for batch in KeyBatch::split(&keys) {
                            msgs.push(RoutedMessage::new(self.me, dst, seq[dst.index()], batch));
                            seq[dst.index()] += 1;
                        }
                    }
                }
                let mut router = RouterMachine::from_messages(self.n, self.me, msgs, 0x60);
                let (base, outbox) = ctx.split();
                let mut sub_out: Vec<(NodeId, GMsg<KeyBatch>)> = Vec::new();
                let mut sub_ctx = Ctx::from_parts(base.reborrow(), &mut sub_out);
                router.on_start(&mut sub_ctx);
                for (dst, m) in sub_out {
                    outbox.push((dst, FsMsg::Route(Box::new(m))));
                }
                self.router = Some(router);
                Step::Continue
            }
            12..=27 => {
                let router = self.router.as_mut().expect("router active");
                let (base, outbox) = ctx.split();
                let mut sub_out: Vec<(NodeId, GMsg<KeyBatch>)> = Vec::new();
                let mut sub_inbox = Inbox::from_messages(d.route);
                let mut sub_ctx = Ctx::from_parts(base.reborrow(), &mut sub_out);
                let step = router.on_round(&mut sub_ctx, &mut sub_inbox);
                for (dst, m) in sub_out {
                    outbox.push((dst, FsMsg::Route(Box::new(m))));
                }
                match step {
                    Step::Continue => {
                        debug_assert!(call < 27, "router must finish by call 27");
                        Step::Continue
                    }
                    Step::Done(batches) => {
                        debug_assert_eq!(call, 27, "router finishes exactly at call 27");
                        // Step 7: sort within my group, skipping the final
                        // redistribution.
                        let received: Vec<TaggedKey> =
                            batches.into_iter().flat_map(|m| m.payload.keys).collect();
                        let my_group = self.group(self.group_of(self.me.index()));
                        let local = my_group
                            .local_index(self.me)
                            .expect("every node is in its group");
                        let mut sort2 = SubsetSort::member(
                            my_group,
                            local,
                            received,
                            4 * self.n,
                            true,
                            CommonScope::new("sort.groups", self.group_of(self.me.index()) as u64),
                        );
                        let (base, outbox) = ctx.split();
                        for (dst, m) in sort2.activate(base) {
                            outbox.push((dst, FsMsg::Sort2(m)));
                        }
                        self.sort2 = Some(sort2);
                        Step::Continue
                    }
                }
            }
            28..=35 => {
                for (src, h) in d.holdings {
                    self.holdings[src.index()] = h;
                }
                let sort2 = self.sort2.as_mut().expect("sort2 active");
                let (base, outbox) = ctx.split();
                let step = sort2.on_round(base, d.sort2);
                for (dst, m) in step.sends {
                    outbox.push((dst, FsMsg::Sort2(m)));
                }
                if call == 31 {
                    // Overlay: my post-sort holding is known as soon as the
                    // in-group counts are announced; broadcast it so Step 8
                    // demands become global common knowledge.
                    let h = sort2
                        .my_pending_holding()
                        .expect("counts are announced by sort2's fourth round");
                    ctx.broadcast(FsMsg::Holding(h));
                }
                if call < 35 {
                    debug_assert!(step.output.is_none());
                    return Step::Continue;
                }
                // Step 8, first leg: rank r travels via relay r mod n.
                let out = step.output.expect("group sort completes at call 35");
                self.total = self.holdings.iter().sum();
                self.q = self.total.div_ceil(self.n as u64).max(1);
                let my_offset: u64 = self.holdings[..self.me.index()].iter().sum();
                debug_assert_eq!(out.held.len() as u64, self.holdings[self.me.index()]);
                self.held = out.held;
                self.held_offset = my_offset;
                ctx.charge_work(self.held.len() as u64);
                for (i, k) in self.held.drain(..).enumerate() {
                    let rank = my_offset + i as u64;
                    ctx.send(
                        NodeId::new((rank % self.n as u64) as usize),
                        FsMsg::R8a { rank, key: k },
                    );
                }
                Step::Continue
            }
            36 => {
                // Step 8, second leg: forward to the rank's owner.
                ctx.charge_work(d.r8a.len() as u64);
                for (rank, key) in d.r8a {
                    let owner = (rank / self.q) as usize;
                    ctx.send(NodeId::new(owner), FsMsg::R8b { rank, key });
                }
                Step::Continue
            }
            37 => {
                self.final_keys = d.r8b;
                crate::sortkey::sort_by_u64_key(&mut self.final_keys, |&(rank, _)| rank);
                let offset = self.q * self.me.index() as u64;
                for (i, &(rank, _)) in self.final_keys.iter().enumerate() {
                    debug_assert_eq!(rank, offset + i as u64, "rank gap in final batch");
                }
                ctx.charge_work(sort_cost(self.final_keys.len()));
                Step::Done(NodeBatch {
                    keys: self.final_keys.drain(..).map(|(_, k)| k).collect(),
                    offset,
                })
            }
            _ => panic!("FullSortMachine stepped past completion"),
        }
    }
}

impl FullSortMachine {
    fn tiny_round(&mut self, ctx: &mut Ctx<'_, FsMsg>, d: Demux) -> Step<NodeBatch> {
        self.gathered.extend(d.gather);
        let call = self.call as usize;
        if let Some(k) = self.keys.get(call).copied() {
            ctx.broadcast(FsMsg::Gather(k));
        }
        if call <= self.n {
            return Step::Continue;
        }
        // Everyone holds everything: sort locally, keep my slice.
        crate::sortkey::sort_tagged(&mut self.gathered);
        let total = self.gathered.len() as u64;
        let q = total.div_ceil(self.n as u64).max(1);
        let lo = (q * self.me.index() as u64).min(total);
        let hi = (q * (self.me.index() as u64 + 1)).min(total);
        ctx.charge_work(sort_cost(self.gathered.len()));
        Step::Done(NodeBatch {
            keys: self.gathered[lo as usize..hi as usize].to_vec(),
            offset: lo,
        })
    }
}

/// Outcome of a full sort run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortOutcome {
    /// Per-node sorted batches (node `i` holds ranks
    /// `[offsets[i], offsets[i] + batches[i].len())`).
    pub batches: Vec<Vec<TaggedKey>>,
    /// Global rank of each node's first key.
    pub offsets: Vec<u64>,
    /// Total number of keys.
    pub total: u64,
    /// Rounds, messages, bits, work.
    pub metrics: Metrics,
}

/// The simulator spec for sorting: the embedded router carries bundled
/// keys, so the constant-factor budget is wider than plain routing.
pub fn spec_for_sorting(n: usize) -> CliqueSpec {
    CliqueSpec::new(n)
        .expect("n >= 1")
        .with_budget_words(512)
        .with_max_rounds(96)
}

/// Sorts per-node key batches with Algorithm 4 (Theorem 4.5, 37 rounds),
/// verifying the result against a local reference sort.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInstance`] for oversized inputs or keys
/// equal to `u64::MAX`, plus any simulation or verification failure.
pub fn sort_keys(keys: &[Vec<u64>]) -> Result<SortOutcome, CoreError> {
    sort_with_spec(keys, spec_for_sorting(keys.len()))
}

/// As [`sort_keys`] with a caller-provided spec.
///
/// # Errors
///
/// See [`sort_keys`].
pub fn sort_with_spec(keys: &[Vec<u64>], spec: CliqueSpec) -> Result<SortOutcome, CoreError> {
    sort_with_exec(keys, spec, Exec::OneShot)
}

/// The shared driver: one-shot and session execution differ only in the
/// [`Exec`] passed here.
///
/// # Errors
///
/// See [`sort_keys`].
pub(crate) fn sort_with_exec(
    keys: &[Vec<u64>],
    spec: CliqueSpec,
    mut exec: Exec<'_>,
) -> Result<SortOutcome, CoreError> {
    let n = keys.len();
    if n == 0 {
        return Err(CoreError::invalid("at least one node required"));
    }
    for (i, list) in keys.iter().enumerate() {
        if list.len() > n {
            return Err(CoreError::invalid(format!(
                "node {i} holds {} keys, more than n = {n}",
                list.len()
            )));
        }
        if list.contains(&u64::MAX) {
            return Err(CoreError::invalid("u64::MAX is a reserved sentinel"));
        }
    }
    let machines = (0..n)
        .map(|v| FullSortMachine::new(n, NodeId::new(v), keys[v].clone()))
        .collect();
    let report = exec.run(spec, machines)?;
    let batches: Vec<Vec<TaggedKey>> = report.outputs.iter().map(|b| b.keys.clone()).collect();
    let offsets: Vec<u64> = report.outputs.iter().map(|b| b.offset).collect();

    // Verify against a reference sort.
    let mut reference: Vec<TaggedKey> = keys
        .iter()
        .enumerate()
        .flat_map(|(i, list)| {
            list.iter()
                .enumerate()
                .map(move |(j, &k)| TaggedKey::new(k, NodeId::new(i), j as u32))
        })
        .collect();
    reference.sort_unstable();
    let got: Vec<TaggedKey> = batches.iter().flatten().copied().collect();
    if got != reference {
        return Err(CoreError::VerificationFailed {
            reason: format!(
                "sorted output mismatch: {} keys out, {} expected",
                got.len(),
                reference.len()
            ),
        });
    }
    for k in 0..n {
        let expected_offset: u64 = batches[..k].iter().map(|b| b.len() as u64).sum();
        if offsets[k] != expected_offset && !batches[k].is_empty() {
            return Err(CoreError::VerificationFailed {
                reason: format!(
                    "node {k} reports offset {}, expected {expected_offset}",
                    offsets[k]
                ),
            });
        }
    }
    Ok(SortOutcome {
        batches,
        offsets,
        total: reference.len() as u64,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_for(n: usize, f: impl Fn(usize, usize) -> u64) -> Vec<Vec<u64>> {
        (0..n).map(|i| (0..n).map(|j| f(i, j)).collect()).collect()
    }

    #[test]
    fn full_load_square_in_37_rounds() {
        let n = 16;
        let keys = keys_for(n, |i, j| ((i * 131 + j * 17) % 4096) as u64);
        let out = sort_keys(&keys).unwrap();
        assert_eq!(out.metrics.comm_rounds(), 37);
        assert_eq!(out.total, (n * n) as u64);
    }

    #[test]
    fn already_sorted_input() {
        let n = 16;
        let keys = keys_for(n, |i, j| (i * n + j) as u64);
        let out = sort_keys(&keys).unwrap();
        assert!(out.metrics.comm_rounds() <= 37);
    }

    #[test]
    fn reverse_sorted_input() {
        let n = 16;
        let keys = keys_for(n, |i, j| (n * n - i * n - j) as u64);
        let out = sort_keys(&keys).unwrap();
        assert!(out.metrics.comm_rounds() <= 37);
    }

    #[test]
    fn duplicate_heavy_input() {
        let n = 16;
        let keys = keys_for(n, |_, j| (j % 3) as u64);
        let out = sort_keys(&keys).unwrap();
        assert!(out.metrics.comm_rounds() <= 37);
    }

    #[test]
    fn non_square_sizes() {
        for n in [5, 8, 12, 20] {
            let keys = keys_for(n, |i, j| ((i * 7 + j * 13) % 100) as u64);
            let out = sort_keys(&keys).unwrap();
            assert!(
                out.metrics.comm_rounds() <= 37,
                "n={n}: {} rounds",
                out.metrics.comm_rounds()
            );
        }
    }

    #[test]
    fn uneven_inputs() {
        let n = 9;
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                (0..(i * 2) % (n + 1))
                    .map(|j| ((i + j * 31) % 64) as u64)
                    .collect()
            })
            .collect();
        let out = sort_keys(&keys).unwrap();
        assert!(out.metrics.comm_rounds() <= 37);
    }

    #[test]
    fn tiny_cliques() {
        for n in [1, 2, 3] {
            let keys = keys_for(n, |i, j| ((i * 3 + j) % 5) as u64);
            let out = sort_keys(&keys).unwrap();
            assert!(out.metrics.comm_rounds() <= 37, "n={n}");
        }
    }

    #[test]
    fn rejects_sentinel_keys() {
        let keys = vec![vec![u64::MAX], vec![]];
        assert!(sort_keys(&keys).is_err());
    }

    #[test]
    fn rejects_oversized_input() {
        let keys = vec![vec![1, 2, 3], vec![]];
        assert!(sort_keys(&keys).is_err());
    }
}
