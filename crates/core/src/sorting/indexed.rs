//! Corollary 4.6 and its applications: duplicate-aware global key
//! indices, rank selection, and mode finding — all in a constant number
//! of rounds on top of Algorithm 4.
//!
//! After the 37-round sort, every node holds a contiguous batch of the
//! global order. One broadcast round of per-batch boundary summaries
//! (first/last value and their multiplicities, distinct count, best run)
//! lets every node stitch runs across batch boundaries locally, which
//! yields:
//!
//! * **selection** — the owner of rank `k` announces the key: 38 rounds;
//! * **mode** — computable locally from the summaries: 38 rounds;
//! * **global indices** — each node computes the non-repetitive index of
//!   every key in its batch, then routes `(position, index)` reports back
//!   to the keys' origins via Theorem 3.7: 37 + 1 + 16 = 54 rounds.

use crate::error::CoreError;
use crate::exec::Exec;
use crate::routing::{GMsg, RoutedMessage, RouterMachine};
use crate::sorting::full_sort::{spec_for_sorting, FsMsg, FullSortMachine, NodeBatch};
use cc_sim::util::word_bits;
use cc_sim::{CliqueSpec, Ctx, Inbox, Metrics, NodeId, NodeMachine, Payload, Step};

/// Per-batch boundary summary broadcast after the sort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Boundary {
    offset: u64,
    len: u64,
    first_val: u64,
    first_cnt: u64,
    last_val: u64,
    last_cnt: u64,
    distinct: u64,
    best_val: u64,
    best_cnt: u64,
}

impl Payload for Boundary {
    fn size_bits(&self, n: usize) -> u64 {
        // Nine values of at most two words each.
        18 * word_bits(n)
    }
}

const NONE: u64 = u64::MAX;

fn summarize(batch: &NodeBatch) -> Boundary {
    let keys = &batch.keys;
    if keys.is_empty() {
        return Boundary {
            offset: batch.offset,
            len: 0,
            first_val: NONE,
            first_cnt: 0,
            last_val: NONE,
            last_cnt: 0,
            distinct: 0,
            best_val: NONE,
            best_cnt: 0,
        };
    }
    let first_val = keys[0].key;
    let last_val = keys[keys.len() - 1].key;
    let first_cnt = keys.iter().take_while(|k| k.key == first_val).count() as u64;
    let last_cnt = keys.iter().rev().take_while(|k| k.key == last_val).count() as u64;
    let mut distinct = 0u64;
    let mut best_val = keys[0].key;
    let mut best_cnt = 0u64;
    let mut run_val = keys[0].key;
    let mut run_cnt = 0u64;
    for k in keys {
        if k.key == run_val {
            run_cnt += 1;
        } else {
            if run_cnt > best_cnt {
                best_cnt = run_cnt;
                best_val = run_val;
            }
            distinct += 1;
            run_val = k.key;
            run_cnt = 1;
        }
    }
    if run_cnt > best_cnt {
        best_cnt = run_cnt;
        best_val = run_val;
    }
    distinct += 1;
    Boundary {
        offset: batch.offset,
        len: keys.len() as u64,
        first_val,
        first_cnt,
        last_val,
        last_cnt,
        distinct,
        best_val,
        best_cnt,
    }
}

/// A `(position at origin, duplicate-aware global index)` report routed
/// back to a key's origin.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexReport {
    position: u32,
    index: u64,
}

impl Payload for IndexReport {
    fn size_bits(&self, n: usize) -> u64 {
        3 * word_bits(n)
    }
}

/// Which query the machine answers after the sort.
#[derive(Clone, Debug)]
enum Query {
    Select(u64),
    Mode,
    Indices,
}

/// Messages of the query machine.
#[derive(Clone, Debug)]
pub enum QMsg {
    /// Sort traffic.
    Fs(Box<FsMsg>),
    /// Post-sort boundary summaries.
    Bound(Boundary),
    /// Selection answer broadcast.
    Answer(u64),
    /// Index reports routed home.
    Back(Box<GMsg<IndexReport>>),
}

impl Payload for QMsg {
    fn size_bits(&self, n: usize) -> u64 {
        2 + match self {
            QMsg::Fs(m) => m.size_bits(n),
            QMsg::Bound(b) => b.size_bits(n),
            QMsg::Answer(_) => 2 * word_bits(n),
            QMsg::Back(m) => m.size_bits(n),
        }
    }
}

/// Per-node output of a query run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryAnswer {
    /// The selected key (identical on every node).
    Selected(u64),
    /// The mode and its multiplicity (identical on every node).
    Mode(u64, u64),
    /// For each of this node's input keys (by input position), its
    /// duplicate-aware index in the sorted union.
    Indices(Vec<u64>),
}

struct QueryMachine {
    inner: FullSortMachine,
    query: Query,
    n: usize,
    me: NodeId,
    call: u32,
    sort_done_call: Option<u32>,
    batch: Option<NodeBatch>,
    bounds: Vec<Option<Boundary>>,
    router: Option<RouterMachine<IndexReport>>,
    input_len: usize,
}

impl NodeMachine for QueryMachine {
    type Msg = QMsg;
    type Output = QueryAnswer;

    fn on_start(&mut self, ctx: &mut Ctx<'_, QMsg>) {
        let (base, outbox) = ctx.split();
        let mut sub: Vec<(NodeId, FsMsg)> = Vec::new();
        let mut sub_ctx = Ctx::from_parts(base.reborrow(), &mut sub);
        self.inner.on_start(&mut sub_ctx);
        for (dst, m) in sub {
            outbox.push((dst, QMsg::Fs(Box::new(m))));
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, QMsg>, inbox: &mut Inbox<QMsg>) -> Step<QueryAnswer> {
        self.call += 1;
        let mut fs = Vec::new();
        let mut bounds = Vec::new();
        let mut answers = Vec::new();
        let mut back = Vec::new();
        for (src, msg) in inbox.drain() {
            match msg {
                QMsg::Fs(m) => fs.push((src, *m)),
                QMsg::Bound(b) => bounds.push((src, b)),
                QMsg::Answer(a) => answers.push(a),
                QMsg::Back(m) => back.push((src, *m)),
            }
        }

        // Phase 1: drive the sort to completion.
        if self.batch.is_none() {
            let (base, outbox) = ctx.split();
            let mut sub: Vec<(NodeId, FsMsg)> = Vec::new();
            let mut sub_inbox = Inbox::from_messages(fs);
            let mut sub_ctx = Ctx::from_parts(base.reborrow(), &mut sub);
            let step = self.inner.on_round(&mut sub_ctx, &mut sub_inbox);
            for (dst, m) in sub {
                outbox.push((dst, QMsg::Fs(Box::new(m))));
            }
            match step {
                Step::Continue => return Step::Continue,
                Step::Done(batch) => {
                    self.sort_done_call = Some(self.call);
                    match &self.query {
                        Query::Select(k) => {
                            let lo = batch.offset;
                            let hi = batch.offset + batch.keys.len() as u64;
                            if *k >= lo && *k < hi {
                                let key = batch.keys[(*k - lo) as usize].key;
                                ctx.broadcast(QMsg::Answer(key));
                            }
                        }
                        Query::Mode | Query::Indices => {
                            ctx.broadcast(QMsg::Bound(summarize(&batch)));
                        }
                    }
                    self.batch = Some(batch);
                    return Step::Continue;
                }
            }
        }

        let sort_done = self.sort_done_call.expect("batch implies sort done");
        // Phase 2: one round after the sort.
        if self.call == sort_done + 1 {
            match &self.query {
                Query::Select(_) => {
                    assert_eq!(answers.len(), 1, "exactly one node owns the rank");
                    return Step::Done(QueryAnswer::Selected(answers[0]));
                }
                Query::Mode => {
                    for (src, b) in bounds {
                        self.bounds[src.index()] = Some(b);
                    }
                    return Step::Done(self.compute_mode(ctx));
                }
                Query::Indices => {
                    for (src, b) in bounds {
                        self.bounds[src.index()] = Some(b);
                    }
                    let reports = self.compute_index_reports(ctx);
                    let mut router = RouterMachine::from_messages(self.n, self.me, reports, 0x1D);
                    let (base, outbox) = ctx.split();
                    let mut sub: Vec<(NodeId, GMsg<IndexReport>)> = Vec::new();
                    let mut sub_ctx = Ctx::from_parts(base.reborrow(), &mut sub);
                    router.on_start(&mut sub_ctx);
                    for (dst, m) in sub {
                        outbox.push((dst, QMsg::Back(Box::new(m))));
                    }
                    self.router = Some(router);
                    return Step::Continue;
                }
            }
        }

        // Phase 3 (indices only): route the reports home.
        let router = self.router.as_mut().expect("router active");
        let (base, outbox) = ctx.split();
        let mut sub: Vec<(NodeId, GMsg<IndexReport>)> = Vec::new();
        let mut sub_inbox = Inbox::from_messages(back);
        let mut sub_ctx = Ctx::from_parts(base.reborrow(), &mut sub);
        let step = router.on_round(&mut sub_ctx, &mut sub_inbox);
        for (dst, m) in sub {
            outbox.push((dst, QMsg::Back(Box::new(m))));
        }
        match step {
            Step::Continue => Step::Continue,
            Step::Done(msgs) => {
                let mut indices = vec![0u64; self.input_len];
                for m in msgs {
                    indices[m.payload.position as usize] = m.payload.index;
                }
                Step::Done(QueryAnswer::Indices(indices))
            }
        }
    }
}

impl QueryMachine {
    fn new(n: usize, me: NodeId, keys: Vec<u64>, query: Query) -> Self {
        let input_len = keys.len();
        QueryMachine {
            inner: FullSortMachine::new(n, me, keys),
            query,
            n,
            me,
            call: 0,
            sort_done_call: None,
            batch: None,
            bounds: vec![None; n],
            router: None,
            input_len,
        }
    }

    /// Stitches the boundary summaries into the global mode.
    fn compute_mode(&mut self, ctx: &mut Ctx<'_, QMsg>) -> QueryAnswer {
        let mut best_val = 0u64;
        let mut best_cnt = 0u64;
        let mut run_val = NONE;
        let mut run_cnt = 0u64;
        for b in self.bounds.iter().flatten() {
            if b.len == 0 {
                continue;
            }
            // In-batch champion.
            if b.best_cnt > best_cnt {
                best_cnt = b.best_cnt;
                best_val = b.best_val;
            }
            // Cross-boundary run stitching.
            if b.first_val == run_val {
                if b.first_cnt == b.len {
                    // Entire batch continues the run.
                    run_cnt += b.len;
                } else {
                    run_cnt += b.first_cnt;
                    if run_cnt > best_cnt {
                        best_cnt = run_cnt;
                        best_val = run_val;
                    }
                    run_val = b.last_val;
                    run_cnt = b.last_cnt;
                }
            } else {
                if run_cnt > best_cnt {
                    best_cnt = run_cnt;
                    best_val = run_val;
                }
                if b.first_val == b.last_val {
                    run_val = b.first_val;
                    run_cnt = b.len;
                } else {
                    run_val = b.last_val;
                    run_cnt = b.last_cnt;
                }
            }
        }
        if run_cnt > best_cnt {
            best_cnt = run_cnt;
            best_val = run_val;
        }
        ctx.charge_work(self.n as u64);
        QueryAnswer::Mode(best_val, best_cnt)
    }

    /// Computes duplicate-aware indices for my batch and builds the
    /// route-home reports.
    fn compute_index_reports(
        &mut self,
        ctx: &mut Ctx<'_, QMsg>,
    ) -> Vec<RoutedMessage<IndexReport>> {
        let batch = self.batch.as_ref().expect("sort completed");
        // Distinct values strictly before my batch, and whether my first
        // value already appeared.
        let mut distinct_before = 0u64;
        let mut prev_last: Option<u64> = None;
        for b in self.bounds.iter().take(self.me.index()).flatten() {
            if b.len == 0 {
                continue;
            }
            let joins = prev_last == Some(b.first_val);
            distinct_before += b.distinct - u64::from(joins);
            prev_last = Some(b.last_val);
        }
        let continues = !batch.keys.is_empty() && prev_last == Some(batch.keys[0].key);
        let mut reports = Vec::with_capacity(batch.keys.len());
        let mut seq = vec![0u32; self.n];
        // Index of a value = number of strictly smaller distinct values.
        // If my first value continues a run from the previous batch, it is
        // the last of the `distinct_before` values; otherwise it is new.
        let mut index = if continues {
            distinct_before - 1
        } else {
            distinct_before
        };
        let mut prev: Option<u64> = None;
        for k in &batch.keys {
            if let Some(pv) = prev {
                if k.key != pv {
                    index += 1;
                }
            }
            prev = Some(k.key);
            let dst = k.origin;
            reports.push(RoutedMessage::new(
                self.me,
                dst,
                seq[dst.index()],
                IndexReport {
                    position: k.index_at_origin,
                    index,
                },
            ));
            seq[dst.index()] += 1;
        }
        ctx.charge_work(batch.keys.len() as u64);
        reports
    }
}

/// Outcome of a [`global_indices`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexOutcome {
    /// `indices[v][p]` is the duplicate-aware global index of node `v`'s
    /// `p`-th input key.
    pub indices: Vec<Vec<u64>>,
    /// Measurements.
    pub metrics: Metrics,
}

/// Outcome of a [`select_rank`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectOutcome {
    /// The key of the requested rank.
    pub key: u64,
    /// Measurements.
    pub metrics: Metrics,
}

/// Outcome of a [`mode_query`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeOutcome {
    /// The most frequent key value.
    pub key: u64,
    /// Its multiplicity.
    pub count: u64,
    /// Measurements.
    pub metrics: Metrics,
}

fn run_query(
    keys: &[Vec<u64>],
    query: Query,
    spec: CliqueSpec,
    mut exec: Exec<'_>,
) -> Result<(Vec<QueryAnswer>, Metrics), CoreError> {
    let n = keys.len();
    if n == 0 {
        return Err(CoreError::invalid("at least one node required"));
    }
    let machines = (0..n)
        .map(|v| QueryMachine::new(n, NodeId::new(v), keys[v].clone(), query.clone()))
        .collect();
    let report = exec.run(spec, machines)?;
    Ok((report.outputs, report.metrics))
}

/// Corollary 4.6: the duplicate-aware index of every input key, returned
/// to its origin, in a constant number of rounds (37 + 1 + 16).
///
/// # Errors
///
/// Propagates instance validation and simulation failures.
pub fn global_indices(keys: &[Vec<u64>]) -> Result<IndexOutcome, CoreError> {
    // `.max(1)`: empty input must reach the graceful n == 0 error below,
    // not the spec builder's panic.
    global_indices_with_spec(keys, spec_for_sorting(keys.len().max(1)))
}

/// As [`global_indices`] with a caller-provided spec (notably its
/// [`ExecMode`](cc_sim::ExecMode)).
///
/// # Errors
///
/// See [`global_indices`].
pub fn global_indices_with_spec(
    keys: &[Vec<u64>],
    spec: CliqueSpec,
) -> Result<IndexOutcome, CoreError> {
    global_indices_with_exec(keys, spec, Exec::OneShot)
}

/// The shared driver behind [`global_indices`]; see [`Exec`].
pub(crate) fn global_indices_with_exec(
    keys: &[Vec<u64>],
    spec: CliqueSpec,
    exec: Exec<'_>,
) -> Result<IndexOutcome, CoreError> {
    let (answers, metrics) = run_query(keys, Query::Indices, spec, exec)?;
    let indices = answers
        .into_iter()
        .map(|a| match a {
            QueryAnswer::Indices(v) => v,
            other => panic!("unexpected answer {other:?}"),
        })
        .collect();
    Ok(IndexOutcome { indices, metrics })
}

/// Selection: the key of global rank `rank` (0-based), known to every
/// node after 38 rounds.
///
/// # Errors
///
/// Rejects out-of-range ranks; propagates simulation failures.
pub fn select_rank(keys: &[Vec<u64>], rank: u64) -> Result<SelectOutcome, CoreError> {
    select_rank_with_spec(keys, rank, spec_for_sorting(keys.len().max(1)))
}

/// As [`select_rank`] with a caller-provided spec (notably its
/// [`ExecMode`](cc_sim::ExecMode)).
///
/// # Errors
///
/// See [`select_rank`].
pub fn select_rank_with_spec(
    keys: &[Vec<u64>],
    rank: u64,
    spec: CliqueSpec,
) -> Result<SelectOutcome, CoreError> {
    select_rank_with_exec(keys, rank, spec, Exec::OneShot)
}

/// The shared driver behind [`select_rank`]; see [`Exec`].
pub(crate) fn select_rank_with_exec(
    keys: &[Vec<u64>],
    rank: u64,
    spec: CliqueSpec,
    exec: Exec<'_>,
) -> Result<SelectOutcome, CoreError> {
    let total: u64 = keys.iter().map(|l| l.len() as u64).sum();
    if rank >= total {
        return Err(CoreError::invalid(format!(
            "rank {rank} out of range (total {total})"
        )));
    }
    let (answers, metrics) = run_query(keys, Query::Select(rank), spec, exec)?;
    let key = match answers.first() {
        Some(QueryAnswer::Selected(k)) => *k,
        other => panic!("unexpected answer {other:?}"),
    };
    debug_assert!(answers
        .iter()
        .all(|a| matches!(a, QueryAnswer::Selected(k) if *k == key)));
    Ok(SelectOutcome { key, metrics })
}

/// Mode: the most frequent key value and its multiplicity, known to every
/// node after 38 rounds.
///
/// # Errors
///
/// Rejects empty inputs; propagates simulation failures.
pub fn mode_query(keys: &[Vec<u64>]) -> Result<ModeOutcome, CoreError> {
    mode_query_with_spec(keys, spec_for_sorting(keys.len().max(1)))
}

/// As [`mode_query`] with a caller-provided spec (notably its
/// [`ExecMode`](cc_sim::ExecMode)).
///
/// # Errors
///
/// See [`mode_query`].
pub fn mode_query_with_spec(keys: &[Vec<u64>], spec: CliqueSpec) -> Result<ModeOutcome, CoreError> {
    mode_query_with_exec(keys, spec, Exec::OneShot)
}

/// The shared driver behind [`mode_query`]; see [`Exec`].
pub(crate) fn mode_query_with_exec(
    keys: &[Vec<u64>],
    spec: CliqueSpec,
    exec: Exec<'_>,
) -> Result<ModeOutcome, CoreError> {
    let total: u64 = keys.iter().map(|l| l.len() as u64).sum();
    if total == 0 {
        return Err(CoreError::invalid("mode of an empty multiset"));
    }
    let (answers, metrics) = run_query(keys, Query::Mode, spec, exec)?;
    let (key, count) = match answers.first() {
        Some(QueryAnswer::Mode(k, c)) => (*k, *c),
        other => panic!("unexpected answer {other:?}"),
    };
    Ok(ModeOutcome {
        key,
        count,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_for(n: usize, f: impl Fn(usize, usize) -> u64) -> Vec<Vec<u64>> {
        (0..n).map(|i| (0..n).map(|j| f(i, j)).collect()).collect()
    }

    fn reference_indices(keys: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let mut all: Vec<u64> = keys.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        keys.iter()
            .map(|list| {
                list.iter()
                    .map(|k| all.binary_search(k).expect("key present") as u64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn indices_match_reference() {
        let n = 9;
        let keys = keys_for(n, |i, j| ((i + 2 * j) % 7) as u64);
        let out = global_indices(&keys).unwrap();
        assert_eq!(out.indices, reference_indices(&keys));
        assert!(out.metrics.comm_rounds() <= 54);
    }

    #[test]
    fn indices_with_all_distinct_keys() {
        let n = 9;
        let keys = keys_for(n, |i, j| (i * n + j) as u64 * 3);
        let out = global_indices(&keys).unwrap();
        assert_eq!(out.indices, reference_indices(&keys));
    }

    #[test]
    fn indices_with_all_equal_keys() {
        let n = 9;
        let keys = keys_for(n, |_, _| 42);
        let out = global_indices(&keys).unwrap();
        assert_eq!(out.indices, reference_indices(&keys));
    }

    #[test]
    fn selection_finds_median() {
        let n = 9;
        let keys = keys_for(n, |i, j| ((i * 31 + j * 17) % 1000) as u64);
        let mut all: Vec<u64> = keys.iter().flatten().copied().collect();
        all.sort_unstable();
        let rank = (all.len() / 2) as u64;
        let out = select_rank(&keys, rank).unwrap();
        assert_eq!(out.key, all[rank as usize]);
        assert!(out.metrics.comm_rounds() <= 38);
    }

    #[test]
    fn selection_extremes() {
        let n = 4;
        let keys = keys_for(n, |i, j| (i * 4 + j) as u64);
        assert_eq!(select_rank(&keys, 0).unwrap().key, 0);
        assert_eq!(select_rank(&keys, 15).unwrap().key, 15);
        assert!(select_rank(&keys, 16).is_err());
    }

    #[test]
    fn mode_finds_most_frequent() {
        let n = 9;
        // Value 3 appears most often.
        let keys = keys_for(n, |i, j| {
            if (i + j) % 3 == 0 {
                3
            } else {
                (i * n + j) as u64 + 100
            }
        });
        let mut freq = std::collections::HashMap::new();
        for k in keys.iter().flatten() {
            *freq.entry(*k).or_insert(0u64) += 1;
        }
        let (&bk, &bc) = freq.iter().max_by_key(|&(_, c)| *c).unwrap();
        let out = mode_query(&keys).unwrap();
        assert_eq!(out.count, bc);
        assert_eq!(out.key, bk);
        assert!(out.metrics.comm_rounds() <= 38);
    }

    #[test]
    fn mode_spanning_many_batches() {
        // One value dominates the entire input: its run spans every batch.
        let n = 9;
        let keys = keys_for(n, |_, _| 7);
        let out = mode_query(&keys).unwrap();
        assert_eq!(out.key, 7);
        assert_eq!(out.count, (n * n) as u64);
    }
}
