//! §6.3: counting and ordering keys of `o(log n)` bits with 1–2-bit
//! messages in two rounds.
//!
//! With `b`-bit keys there are only `K = 2^b` distinct values, so each
//! value κ is statically assigned a block of `L²` nodes, `L = ⌈log₂(n+1)⌉`
//! (requires `K·L² ≤ n`). In round 1, node `v` sends, for each κ and each
//! set bit `i` of its count of κ, a one-bit message to the `L` nodes
//! `(κ, i, ·)`. In round 2, node `(κ, i, j)` counts the ones it received
//! (call it `q`), and transmits to every node `k` two bits: the `j`-th
//! bit of `q`, and the `j`-th bit of `|{v < k : v sent a one}|`. From
//! these, every node reconstructs the exact multiplicity of every κ, and
//! additionally the number of copies held by smaller-id nodes — enough to
//! assign every one of its own copies its global index.

use crate::error::CoreError;
use crate::exec::Exec;
use cc_sim::util::ceil_log2;
use cc_sim::{CliqueSpec, Ctx, Inbox, Metrics, NodeId, NodeMachine, Payload, Step};

/// Messages of the small-key census: presence bits and report bits.
#[derive(Clone, Debug)]
pub enum SkMsg {
    /// Round 1: "bit `i` of my count of κ is one" (addressing encodes
    /// κ and `i`).
    BitOne,
    /// Round 2: the `j`-th bits of the block's total and of the
    /// receiver's prefix count.
    Report {
        /// `j`-th bit of the number of nodes whose count-bit was one.
        total_bit: bool,
        /// `j`-th bit of the receiver-specific prefix count.
        prefix_bit: bool,
    },
}

impl Payload for SkMsg {
    fn size_bits(&self, _n: usize) -> u64 {
        match self {
            SkMsg::BitOne => 1,
            SkMsg::Report { .. } => 2,
        }
    }
}

struct SmallKeyMachine {
    n: usize,
    me: NodeId,
    num_values: usize,
    l: usize,
    counts: Vec<u64>,
    call: u32,
    /// Round-1 receivers: which senders set the bit (block role).
    ones: Vec<NodeId>,
    totals: Vec<u64>,
    prefix: Vec<u64>,
}

impl SmallKeyMachine {
    fn block_node(&self, kappa: usize, i: usize, j: usize) -> NodeId {
        NodeId::new(kappa * self.l * self.l + i * self.l + j)
    }

    /// Decodes my block role, if any.
    fn my_role(&self) -> Option<(usize, usize, usize)> {
        let v = self.me.index();
        if v >= self.num_values * self.l * self.l {
            return None;
        }
        let kappa = v / (self.l * self.l);
        let rem = v % (self.l * self.l);
        Some((kappa, rem / self.l, rem % self.l))
    }
}

impl NodeMachine for SmallKeyMachine {
    type Msg = SkMsg;
    type Output = (Vec<u64>, Vec<u64>);

    fn on_start(&mut self, ctx: &mut Ctx<'_, SkMsg>) {
        for (kappa, &c) in self.counts.iter().enumerate() {
            for i in 0..self.l {
                if (c >> i) & 1 == 1 {
                    for j in 0..self.l {
                        ctx.send(self.block_node(kappa, i, j), SkMsg::BitOne);
                    }
                }
            }
        }
        ctx.charge_work((self.num_values * self.l) as u64);
    }

    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, SkMsg>,
        inbox: &mut Inbox<SkMsg>,
    ) -> Step<Self::Output> {
        self.call += 1;
        match self.call {
            1 => {
                // Block role: record who set the bit, report both counts.
                self.ones = inbox
                    .drain()
                    .map(|(src, msg)| {
                        let SkMsg::BitOne = msg else {
                            panic!("unexpected message in round 1: {msg:?}");
                        };
                        src
                    })
                    .collect();
                if let Some((_, _, j)) = self.my_role() {
                    let q = self.ones.len() as u64;
                    let mut it = self.ones.iter().peekable();
                    let mut before = 0u64;
                    for k in 0..self.n {
                        while it.peek().is_some_and(|s| s.index() < k) {
                            it.next();
                            before += 1;
                        }
                        ctx.send(
                            NodeId::new(k),
                            SkMsg::Report {
                                total_bit: (q >> j) & 1 == 1,
                                prefix_bit: (before >> j) & 1 == 1,
                            },
                        );
                    }
                    ctx.charge_work(self.n as u64);
                }
                Step::Continue
            }
            2 => {
                // Reconstruct: q_{κ,i} from total bits, prefix counts from
                // prefix bits; then multiplicities via Σ 2^i · q_{κ,i}.
                let mut q = vec![0u64; self.num_values * self.l];
                let mut p = vec![0u64; self.num_values * self.l];
                for (src, msg) in inbox.drain() {
                    let SkMsg::Report {
                        total_bit,
                        prefix_bit,
                    } = msg
                    else {
                        panic!("unexpected message in round 2: {msg:?}");
                    };
                    let v = src.index();
                    let kappa = v / (self.l * self.l);
                    let i = (v % (self.l * self.l)) / self.l;
                    let j = v % self.l;
                    if total_bit {
                        q[kappa * self.l + i] |= 1 << j;
                    }
                    if prefix_bit {
                        p[kappa * self.l + i] |= 1 << j;
                    }
                }
                self.totals = (0..self.num_values)
                    .map(|kappa| (0..self.l).map(|i| q[kappa * self.l + i] << i).sum())
                    .collect();
                self.prefix = (0..self.num_values)
                    .map(|kappa| (0..self.l).map(|i| p[kappa * self.l + i] << i).sum())
                    .collect();
                ctx.charge_work((self.num_values * self.l) as u64);
                Step::Done((
                    std::mem::take(&mut self.totals),
                    std::mem::take(&mut self.prefix),
                ))
            }
            _ => panic!("SmallKeyMachine stepped past completion"),
        }
    }
}

/// Outcome of a small-key census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallKeyOutcome {
    /// `totals[κ]` — global multiplicity of value κ (identical on all
    /// nodes; returned once).
    pub totals: Vec<u64>,
    /// `prefix[v][κ]` — copies of κ held by nodes with id `< v`; together
    /// with its own counts, node `v` knows the global rank interval of
    /// every copy it holds.
    pub prefix: Vec<Vec<u64>>,
    /// Measurements (2 rounds, 1–2-bit messages).
    pub metrics: Metrics,
}

/// Runs the §6.3 two-round census of `key_bits`-bit keys.
///
/// `keys[v]` are node `v`'s key values, each `< 2^key_bits`.
///
/// # Errors
///
/// Rejects instances with `2^key_bits · ⌈log₂(n+1)⌉² > n` (the protocol's
/// block assignment needs that many dedicated nodes) or out-of-domain
/// keys; propagates simulation failures.
pub fn small_key_census(keys: &[Vec<u64>], key_bits: u32) -> Result<SmallKeyOutcome, CoreError> {
    // `.max(1)`: empty input must reach the graceful n == 0 error below,
    // not the spec builder's panic.
    small_key_census_with_spec(keys, key_bits, spec_for_census(keys.len().max(1)))
}

/// The simulator spec for the census: two-bit messages, so the budget can
/// be minuscule.
pub fn spec_for_census(n: usize) -> CliqueSpec {
    CliqueSpec::new(n)
        .expect("n >= 1")
        .with_bits_per_edge(2)
        .with_max_rounds(8)
}

/// As [`small_key_census`] with a caller-provided spec (notably its
/// [`ExecMode`](cc_sim::ExecMode)).
///
/// # Errors
///
/// See [`small_key_census`].
pub fn small_key_census_with_spec(
    keys: &[Vec<u64>],
    key_bits: u32,
    spec: CliqueSpec,
) -> Result<SmallKeyOutcome, CoreError> {
    small_key_census_with_exec(keys, key_bits, spec, Exec::OneShot)
}

/// The shared driver: one-shot and session execution differ only in the
/// [`Exec`] passed here.
///
/// # Errors
///
/// See [`small_key_census`].
pub(crate) fn small_key_census_with_exec(
    keys: &[Vec<u64>],
    key_bits: u32,
    spec: CliqueSpec,
    mut exec: Exec<'_>,
) -> Result<SmallKeyOutcome, CoreError> {
    let n = keys.len();
    if n == 0 {
        return Err(CoreError::invalid("at least one node required"));
    }
    let num_values = 1usize << key_bits;
    let l = ceil_log2(n + 1) as usize;
    if num_values * l * l > n {
        return Err(CoreError::invalid(format!(
            "{num_values} values × {l}² block nodes exceed n = {n}"
        )));
    }
    for (v, list) in keys.iter().enumerate() {
        if list.len() > n {
            return Err(CoreError::invalid(format!(
                "node {v} holds {} keys, more than n = {n}",
                list.len()
            )));
        }
        if let Some(&k) = list.iter().find(|&&k| k >= num_values as u64) {
            return Err(CoreError::invalid(format!(
                "key {k} exceeds the {key_bits}-bit domain"
            )));
        }
    }
    let machines = (0..n)
        .map(|v| {
            let mut counts = vec![0u64; num_values];
            for &k in &keys[v] {
                counts[k as usize] += 1;
            }
            SmallKeyMachine {
                n,
                me: NodeId::new(v),
                num_values,
                l,
                counts,
                call: 0,
                ones: Vec::new(),
                totals: Vec::new(),
                prefix: Vec::new(),
            }
        })
        .collect();
    let report = exec.run(spec, machines)?;
    let totals = report.outputs[0].0.clone();
    for (v, (t, _)) in report.outputs.iter().enumerate() {
        if t != &totals {
            return Err(CoreError::VerificationFailed {
                reason: format!("node {v} reconstructed different totals"),
            });
        }
    }
    let prefix = report.outputs.into_iter().map(|(_, p)| p).collect();
    Ok(SmallKeyOutcome {
        totals,
        prefix,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_exactly() {
        let n = 128; // L = 8, K = 2 → 2·64 = 128 ≤ n
        let keys: Vec<Vec<u64>> = (0..n).map(|v| vec![(v % 2) as u64; v % 5]).collect();
        let out = small_key_census(&keys, 1).unwrap();
        assert_eq!(out.metrics.comm_rounds(), 2);
        assert_eq!(out.metrics.max_edge_bits(), 2);
        let mut expected = vec![0u64; 2];
        for list in &keys {
            for &k in list {
                expected[k as usize] += 1;
            }
        }
        assert_eq!(out.totals, expected);
    }

    #[test]
    fn prefixes_give_global_ranks() {
        let n = 128;
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..3).map(|t| ((v + t) % 2) as u64).collect())
            .collect();
        let out = small_key_census(&keys, 1).unwrap();
        for v in 0..n {
            for kappa in 0..2 {
                let expected: u64 = keys[..v]
                    .iter()
                    .map(|l| l.iter().filter(|&&k| k == kappa as u64).count() as u64)
                    .sum();
                assert_eq!(out.prefix[v][kappa as usize], expected, "v={v} κ={kappa}");
            }
        }
    }

    #[test]
    fn rejects_oversized_domain() {
        let keys: Vec<Vec<u64>> = vec![vec![]; 16];
        assert!(small_key_census(&keys, 4).is_err());
    }

    #[test]
    fn rejects_out_of_domain_key() {
        let mut keys: Vec<Vec<u64>> = vec![vec![]; 128];
        keys[0] = vec![2];
        assert!(small_key_census(&keys, 1).is_err());
    }

    #[test]
    fn empty_census() {
        let keys: Vec<Vec<u64>> = vec![vec![]; 128];
        let out = small_key_census(&keys, 1).unwrap();
        assert!(out.totals.iter().all(|&t| t == 0));
    }
}
