//! Algorithm 3: sorting up to `≈ 2n·|W|` keys within a node group `W` in
//! 10 rounds (Lemma 4.4), or 8 when the final order-preserving
//! redistribution is skipped (as both invocations inside Algorithm 4 do).
//!
//! Round schedule (after activation):
//!
//! | rounds | step                                            |
//! |--------|-------------------------------------------------|
//! | 1–2    | announce every `t`-th local key (Step 2)        |
//! | 3–4    | announce per-bucket counts (Step 5)             |
//! | 5–8    | Corollary 3.4 delivery of the buckets (Step 6)  |
//! | 9–10   | order-preserving redistribution (Step 8)        |
//!
//! Steps 1, 3, 4 and 7 are local. The paper spends Corollary 3.4's full
//! four rounds on Step 6 even though Step 5's announcement already made
//! the demands common knowledge — we reproduce that accounting (10
//! rounds), noting in EXPERIMENTS.md that two rounds are saveable.

use crate::sorting::keys::{IndexedBatch, KeyBatch, TaggedKey, KEYS_PER_BATCH};
use cc_primitives::{
    AnnounceMsg, DemandMatrix, Driver, DriverStep, GroupAnnounce, KnownExchange, KxMsg, NodeGroup,
    SubsetExchange, SxMsg,
};
use cc_sim::hash::combine;
use cc_sim::util::sort_cost;
use cc_sim::{BaseCtx, CommonScope, NodeId, Payload};

/// Messages of a [`SubsetSort`].
#[derive(Clone, Debug)]
pub enum A3Msg {
    /// Step 2: sampled-key announcements.
    Sel(KxMsg<AnnounceMsg>),
    /// Step 5: bucket-count announcements.
    Cnt(KxMsg<AnnounceMsg>),
    /// Step 6: bucket delivery.
    Data(SxMsg<KeyBatch>),
    /// Step 8: order-preserving redistribution.
    Redist(KxMsg<IndexedBatch>),
}

impl Payload for A3Msg {
    fn size_bits(&self, n: usize) -> u64 {
        2 + match self {
            A3Msg::Sel(m) | A3Msg::Cnt(m) => m.size_bits(n),
            A3Msg::Data(m) => m.size_bits(n),
            A3Msg::Redist(m) => m.size_bits(n),
        }
    }
}

/// What a member learns when the sort completes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubsetSortOutput {
    /// The keys this member holds, sorted. With `skip_final`, this is the
    /// member's *bucket* (rank-th delimiter range); otherwise it is the
    /// member's slice of the global order, sized like its input.
    pub held: Vec<TaggedKey>,
    /// Global rank (within `W`'s key multiset) of `held[0]`.
    pub offset: u64,
    /// Every member's holding size — common knowledge across `W`.
    pub member_counts: Vec<u64>,
    /// Total number of keys in the group.
    pub total: u64,
}

enum Role {
    Member {
        group: NodeGroup,
        my_local: usize,
        keys: Vec<TaggedKey>,
        cap: usize,
        skip_final: bool,
        scope: CommonScope,
    },
    Relay {
        skip_final: bool,
    },
}

/// Algorithm 3 as a [`Driver`]: 10 rounds (8 with `skip_final`), output
/// [`SubsetSortOutput`] on members and an empty output on relays.
pub struct SubsetSort {
    role: Role,
    call: u8,
    sel_len: usize,
    ann_sel: Option<GroupAnnounce>,
    ann_cnt: Option<GroupAnnounce>,
    sx: Option<SubsetExchange<KeyBatch>>,
    redist: Option<KnownExchange<IndexedBatch>>,
    /// Delimiters derived from the sample (member-side).
    delimiters: Vec<TaggedKey>,
    /// Count matrix `C[i][j]` = member i's keys in bucket j.
    counts: Option<Vec<Vec<u64>>>,
    /// Original per-member input sizes (from the count announce).
    orig_counts: Vec<u64>,
    bucket: Vec<TaggedKey>,
    out: Option<SubsetSortOutput>,
}

impl std::fmt::Debug for SubsetSort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubsetSort(call {})", self.call)
    }
}

impl SubsetSort {
    /// Rounds of the full sort (Lemma 4.4).
    pub const ROUNDS: u64 = 10;
    /// Rounds when the final redistribution is skipped.
    pub const ROUNDS_SKIP_FINAL: u64 = 8;

    /// Member-side driver. `cap` is the common bound on per-member input
    /// size (the `2n` of the paper's statement); `keys` must respect it.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > cap`.
    pub fn member(
        group: NodeGroup,
        my_local: usize,
        mut keys: Vec<TaggedKey>,
        cap: usize,
        skip_final: bool,
        scope: CommonScope,
    ) -> Self {
        assert!(keys.len() <= cap, "member holds more keys than the cap");
        keys.sort_unstable();
        SubsetSort {
            role: Role::Member {
                group,
                my_local,
                keys,
                cap,
                skip_final,
                scope,
            },
            call: 0,
            sel_len: 0,
            ann_sel: None,
            ann_cnt: None,
            sx: None,
            redist: None,
            delimiters: Vec::new(),
            counts: None,
            orig_counts: Vec::new(),
            bucket: Vec::new(),
            out: None,
        }
    }

    /// Relay-side driver for nodes outside the group; `skip_final` must
    /// match the members' setting so every node finishes in the same
    /// round.
    pub fn relay_only(skip_final: bool) -> Self {
        SubsetSort {
            role: Role::Relay { skip_final },
            call: 0,
            sel_len: 0,
            ann_sel: None,
            ann_cnt: None,
            sx: None,
            redist: None,
            delimiters: Vec::new(),
            counts: None,
            orig_counts: Vec::new(),
            bucket: Vec::new(),
            out: None,
        }
    }

    /// The announced per-member bucket counts, available after round 4 —
    /// Algorithm 4 peeks at this to piggyback its global holding
    /// broadcast (see `full_sort`).
    pub fn counts(&self) -> Option<&Vec<Vec<u64>>> {
        self.counts.as_ref()
    }

    /// My post-Step-7 holding size, available after round 4.
    pub fn my_pending_holding(&self) -> Option<u64> {
        let Role::Member { my_local, .. } = &self.role else {
            return Some(0);
        };
        self.counts
            .as_ref()
            .map(|c| c.iter().map(|row| row[*my_local]).sum())
    }

    fn sel_scope(scope: CommonScope) -> CommonScope {
        CommonScope::new(scope.label, combine(scope.tag, 0x531))
    }

    fn cnt_scope(scope: CommonScope) -> CommonScope {
        CommonScope::new(scope.label, combine(scope.tag, 0xC47))
    }

    fn sx_scope(scope: CommonScope) -> CommonScope {
        CommonScope::new(scope.label, combine(scope.tag, 0xDA7A))
    }

    fn redist_scope(scope: CommonScope) -> CommonScope {
        CommonScope::new(scope.label, combine(scope.tag, 0x8ED))
    }
}

/// Packs a tagged key into the two announce words.
fn pack_key(k: &TaggedKey) -> (u64, u64) {
    (
        k.key,
        (u64::from(k.origin.raw()) << 32) | u64::from(k.index_at_origin),
    )
}

fn unpack_key(key: u64, id: u64) -> TaggedKey {
    TaggedKey::new(key, NodeId::new((id >> 32) as usize), id as u32)
}

const NONE: u64 = u64::MAX;

impl Driver for SubsetSort {
    type Msg = A3Msg;
    type Output = SubsetSortOutput;

    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)> {
        let Role::Member {
            group,
            my_local,
            keys,
            cap,
            scope,
            ..
        } = &self.role
        else {
            self.ann_sel = Some(GroupAnnounce::relay_only());
            return Vec::new();
        };
        let w = group.len();
        // Step 1: select every t-th key, t = ⌈cap/w⌉ (the paper's 2√n for
        // cap = 2n, w = √n).
        let t = cap.div_ceil(w).max(1);
        let l = cap / t; // max selected per member
        self.sel_len = l;
        ctx.charge_work(sort_cost(keys.len()));
        ctx.note_mem(4 * keys.len() as u64);
        let mut values = vec![NONE; 2 * l];
        let mut count = 0usize;
        for (idx, k) in keys.iter().enumerate() {
            if (idx + 1) % t == 0 && count < l {
                let (a, b) = pack_key(k);
                values[count] = a;
                values[l + count] = b;
                count += 1;
            }
        }
        let mut ann =
            GroupAnnounce::member(group.clone(), *my_local, values, Self::sel_scope(*scope));
        let sends = ann.activate(ctx);
        self.ann_sel = Some(ann);
        wrap(sends, A3Msg::Sel)
    }

    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output> {
        self.call += 1;
        match self.call {
            1 => {
                let step = self
                    .ann_sel
                    .as_mut()
                    .expect("sel announce active")
                    .on_round(
                        ctx,
                        unwrap(inbox, |m| match m {
                            A3Msg::Sel(x) => x,
                            other => panic!("unexpected message in Step 2: {other:?}"),
                        }),
                    );
                DriverStep::sends(wrap(step.sends, A3Msg::Sel))
            }
            2 => {
                let step = self
                    .ann_sel
                    .as_mut()
                    .expect("sel announce active")
                    .on_round(
                        ctx,
                        unwrap(inbox, |m| match m {
                            A3Msg::Sel(x) => x,
                            other => panic!("unexpected message in Step 2: {other:?}"),
                        }),
                    );
                let matrix = step.output.expect("announce completes on round 2");
                let Role::Member {
                    group,
                    my_local,
                    keys,
                    scope,
                    ..
                } = &self.role
                else {
                    self.ann_cnt = Some(GroupAnnounce::relay_only());
                    return DriverStep::sends(Vec::new());
                };
                let w = group.len();
                let l = self.sel_len;
                // Step 3: pool the samples, pick every ⌈pool/w⌉-th as a
                // delimiter (at most w − 1 of them).
                let mut pool: Vec<TaggedKey> = Vec::new();
                for row in &matrix {
                    for c in 0..l {
                        if row[c] != NONE || row[l + c] != NONE {
                            pool.push(unpack_key(row[c], row[l + c]));
                        }
                    }
                }
                pool.sort_unstable();
                ctx.charge_work(sort_cost(pool.len()));
                let stride = pool.len().div_ceil(w).max(1);
                self.delimiters = pool
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (i + 1) % stride == 0)
                    .take(w - 1)
                    .map(|(_, k)| *k)
                    .collect();
                // Step 4: split my keys by the delimiters (keys sorted at
                // construction, delimiters sorted — one merge pass).
                let mut bucket_counts = vec![0u64; w];
                let mut b = 0usize;
                for k in keys {
                    while b < self.delimiters.len() && *k > self.delimiters[b] {
                        b += 1;
                    }
                    bucket_counts[b] += 1;
                }
                ctx.charge_work(keys.len() as u64 + w as u64);
                // Step 5: announce per-bucket counts (plus my input size
                // in the last slot so orig sizes become common knowledge).
                let mut values: Vec<u64> = bucket_counts.clone();
                values.push(keys.len() as u64);
                let mut ann = GroupAnnounce::member(
                    group.clone(),
                    *my_local,
                    values,
                    Self::cnt_scope(*scope),
                );
                let sends = ann.activate(ctx);
                self.ann_cnt = Some(ann);
                DriverStep::sends(wrap(sends, A3Msg::Cnt))
            }
            3 => {
                let step = self
                    .ann_cnt
                    .as_mut()
                    .expect("cnt announce active")
                    .on_round(
                        ctx,
                        unwrap(inbox, |m| match m {
                            A3Msg::Cnt(x) => x,
                            other => panic!("unexpected message in Step 5: {other:?}"),
                        }),
                    );
                DriverStep::sends(wrap(step.sends, A3Msg::Cnt))
            }
            4 => {
                let step = self
                    .ann_cnt
                    .as_mut()
                    .expect("cnt announce active")
                    .on_round(
                        ctx,
                        unwrap(inbox, |m| match m {
                            A3Msg::Cnt(x) => x,
                            other => panic!("unexpected message in Step 5: {other:?}"),
                        }),
                    );
                let matrix = step.output.expect("announce completes on round 4");
                let Role::Member {
                    group,
                    my_local,
                    keys,
                    scope,
                    ..
                } = &mut self.role
                else {
                    self.sx = Some(SubsetExchange::relay_only());
                    return DriverStep::sends(Vec::new());
                };
                let w = group.len();
                let counts: Vec<Vec<u64>> = matrix.iter().map(|row| row[..w].to_vec()).collect();
                self.orig_counts = matrix.iter().map(|row| row[w]).collect();
                // Step 6: ship bucket j to member j, keys bundled.
                let mut outgoing: Vec<Vec<KeyBatch>> = vec![Vec::new(); w];
                let mut b = 0usize;
                let mut run: Vec<TaggedKey> = Vec::new();
                let keys_taken = std::mem::take(keys);
                for k in keys_taken {
                    while b < self.delimiters.len() && k > self.delimiters[b] {
                        outgoing[b].extend(KeyBatch::split(&run));
                        run.clear();
                        b += 1;
                    }
                    run.push(k);
                }
                outgoing[b].extend(KeyBatch::split(&run));
                ctx.charge_work(outgoing.iter().map(|o| o.len() as u64).sum());
                self.counts = Some(counts);
                let mut sx = SubsetExchange::member(
                    group.clone(),
                    *my_local,
                    outgoing,
                    Self::sx_scope(*scope),
                );
                let sends = sx.activate(ctx);
                self.sx = Some(sx);
                DriverStep::sends(wrap(sends, A3Msg::Data))
            }
            5..=7 => {
                let step = self.sx.as_mut().expect("sx active").on_round(
                    ctx,
                    unwrap(inbox, |m| match m {
                        A3Msg::Data(x) => x,
                        other => panic!("unexpected message in Step 6: {other:?}"),
                    }),
                );
                debug_assert!(step.output.is_none());
                DriverStep::sends(wrap(step.sends, A3Msg::Data))
            }
            8 => {
                let step = self.sx.as_mut().expect("sx active").on_round(
                    ctx,
                    unwrap(inbox, |m| match m {
                        A3Msg::Data(x) => x,
                        other => panic!("unexpected message in Step 6: {other:?}"),
                    }),
                );
                let batches = step.output.expect("delivery completes on round 8");
                let Role::Member {
                    group,
                    my_local,
                    skip_final,
                    scope,
                    ..
                } = &self.role
                else {
                    debug_assert!(batches.is_empty());
                    let Role::Relay { skip_final } = &self.role else {
                        unreachable!("non-member role is Relay");
                    };
                    if *skip_final {
                        return DriverStep::done(SubsetSortOutput {
                            held: Vec::new(),
                            offset: 0,
                            member_counts: Vec::new(),
                            total: 0,
                        });
                    }
                    self.redist = Some(KnownExchange::relay_only());
                    return DriverStep::sends(Vec::new());
                };
                let w = group.len();
                let counts = self.counts.as_ref().expect("counts from round 4");
                // Step 7: sort the received bucket.
                let mut bucket: Vec<TaggedKey> = batches.into_iter().flat_map(|b| b.keys).collect();
                bucket.sort_unstable();
                ctx.charge_work(sort_cost(bucket.len()));
                ctx.note_mem(4 * bucket.len() as u64);
                let member_counts: Vec<u64> = (0..w)
                    .map(|j| counts.iter().map(|row| row[j]).sum())
                    .collect();
                let total: u64 = member_counts.iter().sum();
                assert_eq!(
                    bucket.len() as u64,
                    member_counts[*my_local],
                    "received bucket disagrees with the announced counts"
                );
                let offset: u64 = member_counts[..*my_local].iter().sum();
                if *skip_final {
                    return DriverStep::done(SubsetSortOutput {
                        held: bucket,
                        offset,
                        member_counts,
                        total,
                    });
                }
                // Step 8: redistribute so member i holds its input-sized
                // slice of the global order.
                let orig = &self.orig_counts;
                let mut orig_prefix = vec![0u64; w + 1];
                for i in 0..w {
                    orig_prefix[i + 1] = orig_prefix[i] + orig[i];
                }
                debug_assert_eq!(orig_prefix[w], total);
                let mut demands = DemandMatrix::new(w);
                let mut bucket_prefix = vec![0u64; w + 1];
                for j in 0..w {
                    bucket_prefix[j + 1] = bucket_prefix[j] + member_counts[j];
                }
                for holder in 0..w {
                    let (lo, hi) = (bucket_prefix[holder], bucket_prefix[holder + 1]);
                    for target in 0..w {
                        let (tlo, thi) = (orig_prefix[target], orig_prefix[target + 1]);
                        let olo = lo.max(tlo);
                        let ohi = hi.min(thi);
                        if olo < ohi {
                            let nbatches = ((ohi - olo) as usize).div_ceil(KEYS_PER_BATCH);
                            demands.add(holder, target, nbatches as u32);
                        }
                    }
                }
                ctx.charge_work((w * w) as u64);
                let mut outgoing: Vec<Vec<IndexedBatch>> = vec![Vec::new(); w];
                let (lo, hi) = (bucket_prefix[*my_local], bucket_prefix[*my_local + 1]);
                for target in 0..w {
                    let (tlo, thi) = (orig_prefix[target], orig_prefix[target + 1]);
                    let olo = lo.max(tlo);
                    let ohi = hi.min(thi);
                    let mut p = olo;
                    while p < ohi {
                        let end = (p + KEYS_PER_BATCH as u64).min(ohi);
                        outgoing[target].push(IndexedBatch {
                            start: p,
                            keys: bucket[(p - lo) as usize..(end - lo) as usize].to_vec(),
                        });
                        p = end;
                    }
                }
                let mut kx = KnownExchange::member(
                    group.clone(),
                    demands,
                    outgoing,
                    Self::redist_scope(*scope),
                );
                let sends = kx.activate(ctx);
                self.redist = Some(kx);
                self.bucket.clear();
                self.out = Some(SubsetSortOutput {
                    held: Vec::new(),
                    offset: orig_prefix[*my_local],
                    member_counts: orig.clone(),
                    total,
                });
                DriverStep::sends(wrap(sends, A3Msg::Redist))
            }
            9 => {
                let step = self
                    .redist
                    .as_mut()
                    .expect("redistribution active")
                    .on_round(
                        ctx,
                        unwrap(inbox, |m| match m {
                            A3Msg::Redist(x) => x,
                            other => panic!("unexpected message in Step 8: {other:?}"),
                        }),
                    );
                DriverStep::sends(wrap(step.sends, A3Msg::Redist))
            }
            10 => {
                let step = self
                    .redist
                    .as_mut()
                    .expect("redistribution active")
                    .on_round(
                        ctx,
                        unwrap(inbox, |m| match m {
                            A3Msg::Redist(x) => x,
                            other => panic!("unexpected message in Step 8: {other:?}"),
                        }),
                    );
                let mut batches = step.output.expect("redistribution completes on round 10");
                let mut out = self.out.take().unwrap_or(SubsetSortOutput {
                    held: Vec::new(),
                    offset: 0,
                    member_counts: Vec::new(),
                    total: 0,
                });
                batches.sort_unstable_by_key(|b| b.start);
                let mut expect = out.offset;
                for b in &batches {
                    assert_eq!(b.start, expect, "gap in redistributed key ranks");
                    expect += b.keys.len() as u64;
                }
                out.held = batches.into_iter().flat_map(|b| b.keys).collect();
                ctx.charge_work(out.held.len() as u64);
                DriverStep::done(out)
            }
            _ => panic!("SubsetSort stepped past completion"),
        }
    }
}

fn wrap<M>(sends: Vec<(NodeId, M)>, f: impl Fn(M) -> A3Msg) -> Vec<(NodeId, A3Msg)> {
    sends.into_iter().map(|(d, m)| (d, f(m))).collect()
}

fn unwrap<M>(inbox: Vec<(NodeId, A3Msg)>, f: impl Fn(A3Msg) -> M) -> Vec<(NodeId, M)> {
    inbox.into_iter().map(|(s, m)| (s, f(m))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_primitives::drive;
    use cc_sim::{run_protocol, CliqueSpec};

    fn run_sort(
        n: usize,
        group: NodeGroup,
        cap: usize,
        skip_final: bool,
        keys_of: impl Fn(usize) -> Vec<u64>,
    ) -> (Vec<SubsetSortOutput>, cc_sim::Metrics) {
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(256), |me| {
            if let Some(local) = group.local_index(me) {
                let keys: Vec<TaggedKey> = keys_of(local)
                    .into_iter()
                    .enumerate()
                    .map(|(i, k)| TaggedKey::new(k, me, i as u32))
                    .collect();
                drive(SubsetSort::member(
                    group.clone(),
                    local,
                    keys,
                    cap,
                    skip_final,
                    CommonScope::new("test.a3", 0),
                ))
            } else {
                drive(SubsetSort::relay_only(skip_final))
            }
        })
        .unwrap();
        (report.outputs, report.metrics)
    }

    fn assert_globally_sorted(
        group: &NodeGroup,
        outputs: &[SubsetSortOutput],
        expected: &mut Vec<u64>,
    ) {
        let mut all: Vec<(u64, TaggedKey)> = Vec::new();
        for v in group.iter() {
            let out = &outputs[v.index()];
            for (i, k) in out.held.iter().enumerate() {
                all.push((out.offset + i as u64, *k));
            }
        }
        all.sort_unstable_by_key(|&(rank, _)| rank);
        // Ranks are exactly 0..total and keys ascend.
        for (i, &(rank, _)) in all.iter().enumerate() {
            assert_eq!(rank, i as u64);
        }
        assert!(all.windows(2).all(|w| w[0].1 <= w[1].1), "keys not sorted");
        let mut got: Vec<u64> = all.iter().map(|&(_, k)| k.key).collect();
        expected.sort_unstable();
        assert_eq!(&mut got, expected);
    }

    #[test]
    fn sorts_in_ten_rounds() {
        let n = 16;
        let group = NodeGroup::contiguous(0, 4);
        let keys_of = |local: usize| -> Vec<u64> {
            (0..2 * n)
                .map(|i| ((local * 37 + i * 101) % 997) as u64)
                .collect()
        };
        let (outputs, metrics) = run_sort(n, group.clone(), 2 * n, false, keys_of);
        assert_eq!(metrics.comm_rounds(), 10);
        let mut expected: Vec<u64> = (0..4).flat_map(keys_of).collect();
        assert_globally_sorted(&group, &outputs, &mut expected);
        // Final sizes equal input sizes.
        for v in group.iter() {
            assert_eq!(outputs[v.index()].held.len(), 2 * n);
        }
    }

    #[test]
    fn skip_final_takes_eight_rounds() {
        let n = 16;
        let group = NodeGroup::contiguous(0, 4);
        let keys_of = |local: usize| -> Vec<u64> {
            (0..n).map(|i| ((local * 13 + i * 7) % 50) as u64).collect()
        };
        let (outputs, metrics) = run_sort(n, group.clone(), n, true, keys_of);
        assert_eq!(metrics.comm_rounds(), 8);
        let mut expected: Vec<u64> = (0..4).flat_map(keys_of).collect();
        assert_globally_sorted(&group, &outputs, &mut expected);
    }

    #[test]
    fn duplicate_heavy_input_stays_balanced() {
        // All keys identical: footnote 5's tie-breaking must spread them.
        let n = 16;
        let group = NodeGroup::contiguous(0, 4);
        let (outputs, metrics) = run_sort(n, group.clone(), n, true, |_| vec![42u64; n]);
        assert_eq!(metrics.comm_rounds(), 8);
        let mut expected = vec![42u64; 4 * n];
        assert_globally_sorted(&group, &outputs, &mut expected);
        // Lemma 4.3-style balance: no member drowns.
        for v in group.iter() {
            assert!(
                outputs[v.index()].held.len() < 4 * n,
                "bucket {} exceeds the 4·cap bound",
                outputs[v.index()].held.len()
            );
        }
    }

    #[test]
    fn uneven_inputs() {
        let n = 16;
        let group = NodeGroup::contiguous(4, 4);
        let keys_of = |local: usize| -> Vec<u64> {
            (0..(local * 5) % (n + 1))
                .map(|i| (1000 - i * 3) as u64)
                .collect()
        };
        let (outputs, metrics) = run_sort(n, group.clone(), n, false, keys_of);
        assert!(metrics.comm_rounds() <= 10);
        let mut expected: Vec<u64> = (0..4).flat_map(keys_of).collect();
        assert_globally_sorted(&group, &outputs, &mut expected);
    }

    #[test]
    fn empty_input() {
        let n = 9;
        let group = NodeGroup::contiguous(0, 3);
        let (outputs, metrics) = run_sort(n, group.clone(), n, false, |_| Vec::new());
        assert!(metrics.comm_rounds() <= 10);
        for v in group.iter() {
            assert!(outputs[v.index()].held.is_empty());
        }
    }

    #[test]
    fn singleton_group() {
        let n = 4;
        let group = NodeGroup::contiguous(2, 1);
        let (outputs, metrics) = run_sort(n, group.clone(), n, false, |_| vec![9, 3, 7]);
        assert!(metrics.comm_rounds() <= 10);
        let keys: Vec<u64> = outputs[2].held.iter().map(|k| k.key).collect();
        assert_eq!(keys, vec![3, 7, 9]);
    }
}
