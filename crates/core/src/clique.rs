use crate::error::CoreError;
use crate::routing::{route_deterministic, route_optimized, RouteOutcome, RoutingInstance};
use crate::sorting::{
    global_indices, mode_query, select_rank, small_key_census, sort_keys, IndexOutcome,
    ModeOutcome, SelectOutcome, SmallKeyOutcome, SortOutcome,
};
use cc_sim::util::isqrt;

/// A facade bundling the paper's algorithms for a fixed clique size.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct CongestedClique {
    n: usize,
}

impl CongestedClique {
    /// Creates a facade for an `n`-node clique.
    ///
    /// # Errors
    ///
    /// Rejects `n == 0`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::invalid("clique must have at least one node"));
        }
        Ok(CongestedClique { n })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `⌊√n⌋`, the side length of the node groups the algorithms use.
    #[inline]
    pub fn sqrt_n(&self) -> usize {
        isqrt(self.n)
    }

    pub(crate) fn check(&self, instance_n: usize) -> Result<(), CoreError> {
        if instance_n != self.n {
            return Err(CoreError::invalid(format!(
                "instance is for n = {instance_n}, clique has n = {}",
                self.n
            )));
        }
        Ok(())
    }

    /// Solves the Information Distribution Task deterministically in at
    /// most 16 rounds (Theorem 3.7).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] if the instance is not for
    /// this clique size, plus any simulation/verification error.
    pub fn route(&self, instance: &RoutingInstance) -> Result<RouteOutcome, CoreError> {
        self.check(instance.n())?;
        route_deterministic(instance)
    }

    /// As [`CongestedClique::route`], with the 12-round, `O(n log n)`-work
    /// variant of Theorem 5.4.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::route`].
    pub fn route_optimized(&self, instance: &RoutingInstance) -> Result<RouteOutcome, CoreError> {
        self.check(instance.n())?;
        route_optimized(instance)
    }

    /// Sorts per-node key batches in 37 rounds (Theorem 4.5); node `i`
    /// ends with the `i`-th batch of the global order.
    ///
    /// # Errors
    ///
    /// Rejects oversized inputs and the reserved key `u64::MAX`.
    pub fn sort(&self, keys: &[Vec<u64>]) -> Result<SortOutcome, CoreError> {
        self.check(keys.len())?;
        sort_keys(keys)
    }

    /// Corollary 4.6: duplicate-aware global indices for every input key,
    /// delivered back to its origin, in a constant number of rounds.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::sort`].
    pub fn global_indices(&self, keys: &[Vec<u64>]) -> Result<IndexOutcome, CoreError> {
        self.check(keys.len())?;
        global_indices(keys)
    }

    /// Selection: the key of global rank `rank`, known to every node
    /// after 38 rounds.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ranks.
    pub fn select(&self, keys: &[Vec<u64>], rank: u64) -> Result<SelectOutcome, CoreError> {
        self.check(keys.len())?;
        select_rank(keys, rank)
    }

    /// Mode: the most frequent key and its multiplicity, after 38 rounds.
    ///
    /// # Errors
    ///
    /// Rejects empty inputs.
    pub fn mode(&self, keys: &[Vec<u64>]) -> Result<ModeOutcome, CoreError> {
        self.check(keys.len())?;
        mode_query(keys)
    }

    /// §6.3: exact multiplicities (and per-node prefix counts) of
    /// `key_bits`-bit keys in two rounds of 1–2-bit messages.
    ///
    /// # Errors
    ///
    /// Rejects instances needing more than `n` block nodes.
    pub fn small_key_census(
        &self,
        keys: &[Vec<u64>],
        key_bits: u32,
    ) -> Result<SmallKeyOutcome, CoreError> {
        self.check(keys.len())?;
        small_key_census(keys, key_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_routes() {
        let clique = CongestedClique::new(9).unwrap();
        let inst = RoutingInstance::from_demands(9, |_, _| 1).unwrap();
        assert!(clique.route(&inst).unwrap().metrics.comm_rounds() <= 16);
        assert!(clique.route_optimized(&inst).unwrap().metrics.comm_rounds() <= 12);
    }

    #[test]
    fn facade_sorts_and_queries() {
        let clique = CongestedClique::new(9).unwrap();
        let keys: Vec<Vec<u64>> = (0..9)
            .map(|i| (0..9).map(|j| ((i * 5 + j) % 13) as u64).collect())
            .collect();
        assert!(clique.sort(&keys).unwrap().metrics.comm_rounds() <= 37);
        assert!(clique.select(&keys, 40).is_ok());
        assert!(clique.mode(&keys).is_ok());
    }

    #[test]
    fn rejects_mismatched_instance() {
        let clique = CongestedClique::new(9).unwrap();
        let inst = RoutingInstance::from_demands(4, |_, _| 1).unwrap();
        assert!(clique.route(&inst).is_err());
        assert!(clique.sort(&vec![vec![]; 4]).is_err());
    }

    #[test]
    fn rejects_empty_clique() {
        assert!(CongestedClique::new(0).is_err());
    }
}
