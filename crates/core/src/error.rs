use cc_sim::SimError;
use std::fmt;

/// Errors from the routing and sorting front ends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An instance violates Problem 3.1 / 4.1 preconditions.
    InvalidInstance {
        /// Human-readable reason.
        reason: String,
    },
    /// The simulator rejected the run (budget violation, stall, …).
    Sim(SimError),
    /// Delivered output failed verification against the instance.
    VerificationFailed {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInstance { reason } => write!(f, "invalid instance: {reason}"),
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::VerificationFailed { reason } => {
                write!(f, "verification failed: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl CoreError {
    /// Convenience constructor for instance validation failures.
    pub fn invalid(reason: impl Into<String>) -> Self {
        CoreError::InvalidInstance {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(SimError::TooManyRounds { limit: 5 });
        assert!(e.to_string().contains("simulation failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e2 = CoreError::invalid("bad");
        assert!(e2.to_string().contains("bad"));
    }
}
