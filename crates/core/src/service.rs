//! A persistent query service over the paper's protocols.
//!
//! [`CongestedClique`](crate::CongestedClique) is stateless: every call
//! builds a fresh simulator — new worker threads, new message arenas.
//! [`CliqueService`] is the long-lived counterpart for the
//! repeated-invocation regime (cf. Chang–Huang–Su, *Deterministic
//! Expander Routing*: one routing substrate serving many successive
//! instances): it owns a [`CliqueSession`] and answers every query on it,
//! so threads and arenas are reused across calls — across *different*
//! protocols, too, since the session's workers are type-erased.
//!
//! Determinism carries over unchanged: each answer is bit-identical to
//! the one the stateless facade would produce, because the session's
//! contract is bit-identical [`RunReport`](cc_sim::RunReport)s and the
//! protocol drivers are literally the same functions (see
//! [`Exec`](crate::exec::Exec)).

use crate::error::CoreError;
use crate::exec::Exec;
use crate::routing::{
    route_optimized_with_exec, route_with_exec, spec_for_optimized, spec_for_routing, RouteOutcome,
    RoutingInstance,
};
use crate::sorting::{
    global_indices_with_exec, mode_query_with_exec, select_rank_with_exec,
    small_key_census_with_exec, sort_with_exec, spec_for_census, spec_for_sorting, IndexOutcome,
    ModeOutcome, SelectOutcome, SmallKeyOutcome, SortOutcome,
};
use crate::CongestedClique;
use cc_sim::{CliqueSession, Metrics, SessionStats};

/// The unified response of the seven query entry points: one variant per
/// protocol family, so a caller that multiplexes heterogeneous queries —
/// such as the `cc-server` shard workers — can carry any answer through a
/// single channel type. Wrapping is free (the outcome moves in), and
/// equality is structural, so "bit-identical to a direct
/// [`CliqueService`] call" is expressible as plain `==` on [`Outcome`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A [`CliqueService::route`] / [`CliqueService::route_optimized`]
    /// answer.
    Route(RouteOutcome),
    /// A [`CliqueService::sort`] answer.
    Sort(SortOutcome),
    /// A [`CliqueService::global_indices`] answer.
    Indices(IndexOutcome),
    /// A [`CliqueService::select`] answer.
    Select(SelectOutcome),
    /// A [`CliqueService::mode`] answer.
    Mode(ModeOutcome),
    /// A [`CliqueService::small_key_census`] answer.
    SmallKeys(SmallKeyOutcome),
}

impl Outcome {
    /// The simulator measurements of the run behind this answer, whatever
    /// the variant.
    pub fn metrics(&self) -> &Metrics {
        match self {
            Outcome::Route(o) => &o.metrics,
            Outcome::Sort(o) => &o.metrics,
            Outcome::Indices(o) => &o.metrics,
            Outcome::Select(o) => &o.metrics,
            Outcome::Mode(o) => &o.metrics,
            Outcome::SmallKeys(o) => &o.metrics,
        }
    }
}

/// A stateful facade answering routing/sorting/selection queries on one
/// persistent [`CliqueSession`].
///
/// Prefer this over [`CongestedClique`] whenever more than a handful of
/// queries hit the same clique size: Lenzen's protocols are
/// constant-round, so for small `n` the per-run setup a fresh simulator
/// pays (thread spawns, arena allocations) is a dominant cost that the
/// service amortizes away. For a single query, or when `&self` access
/// matters (the service's methods take `&mut self` because the session
/// mutates its arenas), the stateless facade remains the right tool.
///
/// ```rust
/// use cc_core::CliqueService;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut service = CliqueService::new(16)?;
/// let instance = cc_core::routing::RoutingInstance::from_demands(16, |_, _| 1)?;
/// for _ in 0..3 {
///     let outcome = service.route(&instance)?;
///     assert!(outcome.metrics.comm_rounds() <= 16);
/// }
/// let keys: Vec<Vec<u64>> = (0..16).map(|i| vec![i as u64]).collect();
/// let sorted = service.sort(&keys)?;
/// assert_eq!(sorted.total, 16);
/// assert_eq!(service.stats().completed(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CliqueService {
    clique: CongestedClique,
    session: CliqueSession,
}

impl CliqueService {
    /// Creates a service for an `n`-node clique. Worker threads are
    /// spawned lazily by the first query whose
    /// [`ExecMode`](cc_sim::ExecMode) resolves to more than one worker.
    ///
    /// # Errors
    ///
    /// Rejects `n == 0`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        Ok(CliqueService {
            clique: CongestedClique::new(n)?,
            session: CliqueSession::new(),
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.clique.n()
    }

    /// Aggregate counters over every query answered so far.
    #[inline]
    pub fn stats(&self) -> &SessionStats {
        self.session.stats()
    }

    /// As [`CongestedClique::route`], on the persistent session.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::route`].
    pub fn route(&mut self, instance: &RoutingInstance) -> Result<RouteOutcome, CoreError> {
        self.clique.check(instance.n())?;
        route_with_exec(
            instance,
            spec_for_routing(instance.n()),
            Exec::Session(&mut self.session),
        )
    }

    /// As [`CongestedClique::route_optimized`], on the persistent session.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::route_optimized`].
    pub fn route_optimized(
        &mut self,
        instance: &RoutingInstance,
    ) -> Result<RouteOutcome, CoreError> {
        self.clique.check(instance.n())?;
        route_optimized_with_exec(
            instance,
            spec_for_optimized(instance.n()),
            Exec::Session(&mut self.session),
        )
    }

    /// As [`CongestedClique::sort`], on the persistent session.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::sort`].
    pub fn sort(&mut self, keys: &[Vec<u64>]) -> Result<SortOutcome, CoreError> {
        self.clique.check(keys.len())?;
        sort_with_exec(
            keys,
            spec_for_sorting(keys.len()),
            Exec::Session(&mut self.session),
        )
    }

    /// As [`CongestedClique::global_indices`], on the persistent session.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::global_indices`].
    pub fn global_indices(&mut self, keys: &[Vec<u64>]) -> Result<IndexOutcome, CoreError> {
        self.clique.check(keys.len())?;
        global_indices_with_exec(
            keys,
            spec_for_sorting(keys.len()),
            Exec::Session(&mut self.session),
        )
    }

    /// As [`CongestedClique::select`], on the persistent session.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::select`].
    pub fn select(&mut self, keys: &[Vec<u64>], rank: u64) -> Result<SelectOutcome, CoreError> {
        self.clique.check(keys.len())?;
        select_rank_with_exec(
            keys,
            rank,
            spec_for_sorting(keys.len()),
            Exec::Session(&mut self.session),
        )
    }

    /// As [`CongestedClique::mode`], on the persistent session.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::mode`].
    pub fn mode(&mut self, keys: &[Vec<u64>]) -> Result<ModeOutcome, CoreError> {
        self.clique.check(keys.len())?;
        mode_query_with_exec(
            keys,
            spec_for_sorting(keys.len()),
            Exec::Session(&mut self.session),
        )
    }

    /// As [`CongestedClique::small_key_census`], on the persistent
    /// session.
    ///
    /// # Errors
    ///
    /// See [`CongestedClique::small_key_census`].
    pub fn small_key_census(
        &mut self,
        keys: &[Vec<u64>],
        key_bits: u32,
    ) -> Result<SmallKeyOutcome, CoreError> {
        self.clique.check(keys.len())?;
        small_key_census_with_exec(
            keys,
            key_bits,
            spec_for_census(keys.len()),
            Exec::Session(&mut self.session),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_reuses_one_session_across_protocols() {
        let n = 9;
        let mut service = CliqueService::new(n).unwrap();
        let inst = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 5 + j) % 13) as u64).collect())
            .collect();
        assert!(service.route(&inst).unwrap().metrics.comm_rounds() <= 16);
        assert!(
            service
                .route_optimized(&inst)
                .unwrap()
                .metrics
                .comm_rounds()
                <= 12
        );
        assert!(service.sort(&keys).unwrap().metrics.comm_rounds() <= 37);
        assert!(service.select(&keys, 40).is_ok());
        assert!(service.mode(&keys).is_ok());
        assert!(service.global_indices(&keys).is_ok());
        assert_eq!(service.stats().completed(), 6);
        assert_eq!(service.stats().failed(), 0);
    }

    #[test]
    fn service_rejects_mismatched_instances_like_the_facade() {
        let mut service = CliqueService::new(9).unwrap();
        let inst = RoutingInstance::from_demands(4, |_, _| 1).unwrap();
        assert!(service.route(&inst).is_err());
        assert!(service.sort(&vec![vec![]; 4]).is_err());
        // Facade-level rejections never reach the session.
        assert_eq!(service.stats().runs(), 0);
    }

    #[test]
    fn service_rejects_empty_clique() {
        assert!(CliqueService::new(0).is_err());
    }
}
