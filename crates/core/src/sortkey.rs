//! The shared scatter-key sorting entry point for the protocol hot
//! paths.
//!
//! Every protocol phase in this crate re-sorts message or key batches
//! between rounds. Those sorts used to be ~20 scattered
//! `sort_unstable_by_key` calls; they now funnel through this module into
//! the `cc-sim` radix engine ([`cc_sim::radix`]): count → exclusive scan
//! → scatter over 8-bit digits, with per-thread recycled scratch (on the
//! engine's persistent workers the scratch survives rounds and runs).
//!
//! **Ordering contract.** The radix paths are *stable*, while the call
//! sites they replaced used unstable comparison sorts — safe only
//! because every converted site sorts by a key that is provably unique
//! per element, where stable and unstable sorts coincide:
//!
//! * [`RoutedMessage`]s carry the identity `(src, dst, seq)`, validated
//!   unique by `RoutingInstance` at construction;
//! * [`TaggedKey`]s order by `(key, origin, index_at_origin)` — the
//!   paper's footnote-5 disambiguation triple, distinct by construction;
//! * final-rank batches sort by globally unique ranks.
//!
//! Composite keys are packed into one or two `u64`s (node indices are
//! `u32`, so two fields pack per word); a two-`u64` lexicographic key is
//! two stable radix passes, minor first. Reference/oracle sorts in tests
//! and the `cc-baselines` crate intentionally keep their comparison
//! sorts — they are what the radix output is checked against.

use crate::routing::RoutedMessage;
use crate::sorting::TaggedKey;
use cc_sim::radix;

/// Stable sort by a `u64` key: the crate-wide sorting entry point.
/// Radix scatter above the engine's threshold, stable comparison sort
/// below it — identical results either way.
pub fn sort_by_u64_key<T: Clone>(items: &mut [T], key: impl Fn(&T) -> u64) {
    radix::sort_by_u64_key(items, key);
}

/// Stable sort by the lexicographic pair `(major, minor)` — two stable
/// radix passes (minor first) for composite keys wider than 64 bits.
pub fn sort_by_u64_key2<T: Clone>(
    items: &mut [T],
    major: impl Fn(&T) -> u64,
    minor: impl Fn(&T) -> u64,
) {
    radix::sort_by_u64_key2(items, major, minor);
}

/// Sorts messages by the paper's canonical order `(src, dst, seq)`.
///
/// Packing: major = `src`, minor = `dst · 2³² + seq` (node indices and
/// sequence numbers are `u32`). Identities are unique per
/// `RoutingInstance` validation, so this equals the unstable
/// `sort_unstable_by_key(|m| m.key())` it replaces.
pub fn sort_routed<P: Clone>(msgs: &mut [RoutedMessage<P>]) {
    sort_by_routed_key(msgs, |m| m);
}

/// As [`sort_routed`], for containers that embed a [`RoutedMessage`]
/// (e.g. the square router's intermediate wrappers): `routed` projects
/// the message whose `(src, dst, seq)` identity orders the element.
pub fn sort_by_routed_key<T: Clone, P>(items: &mut [T], routed: impl Fn(&T) -> &RoutedMessage<P>) {
    radix::sort_by_u64_key2(
        items,
        |t| routed(t).src.raw() as u64,
        |t| ((routed(t).dst.raw() as u64) << 32) | routed(t).seq as u64,
    );
}

/// Sorts messages by `(dst / s, src, dst, seq)` — destination-set-major
/// canonical order, the grouping key of the §5 router's redistribution
/// steps. Equal to the unstable `(dst / s, m.key())` sort it replaces
/// because full identities are unique.
pub fn sort_routed_by_set<P: Clone>(msgs: &mut [RoutedMessage<P>], s: usize) {
    debug_assert!(s > 0, "destination sets must be non-empty");
    radix::sort_by_u64_key2(
        msgs,
        |m| (((m.dst.index() / s) as u64) << 32) | m.src.raw() as u64,
        |m| ((m.dst.raw() as u64) << 32) | m.seq as u64,
    );
}

/// Sorts tagged keys by the paper's footnote-5 triple
/// `(key, origin, index_at_origin)` — `TaggedKey`'s derived `Ord`.
/// Major = the key word, minor = `origin · 2³² + index_at_origin`;
/// triples are distinct by construction, so this equals the unstable
/// `sort_unstable()` it replaces.
pub fn sort_tagged(keys: &mut [TaggedKey]) {
    radix::sort_by_u64_key2(
        keys,
        |k| k.key,
        |k| ((k.origin.raw() as u64) << 32) | k.index_at_origin as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::NodeId;

    fn msg(src: usize, dst: usize, seq: u32) -> RoutedMessage<u64> {
        RoutedMessage {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            seq,
            payload: 0,
        }
    }

    /// The packed two-word orders must equal the tuple orders they
    /// replace, on enough messages to clear the radix threshold.
    #[test]
    fn packed_orders_match_tuple_orders() {
        let mut msgs: Vec<RoutedMessage<u64>> = (0..300)
            .map(|i| msg((i * 7) % 17, (i * 13) % 23, (i % 5) as u32))
            .collect();
        let mut by_tuple = msgs.clone();
        by_tuple.sort_by_key(|m| m.key());
        sort_routed(&mut msgs);
        assert_eq!(
            msgs.iter().map(|m| m.key()).collect::<Vec<_>>(),
            by_tuple.iter().map(|m| m.key()).collect::<Vec<_>>()
        );

        let s = 4;
        let mut by_set = msgs.clone();
        let mut oracle = msgs.clone();
        oracle.sort_by_key(|m| (m.dst.index() / s, m.key()));
        sort_routed_by_set(&mut by_set, s);
        assert_eq!(
            by_set.iter().map(|m| m.key()).collect::<Vec<_>>(),
            oracle.iter().map(|m| m.key()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tagged_order_matches_derived_ord() {
        let mut keys: Vec<TaggedKey> = (0..200u64)
            .map(|i| TaggedKey::new((i * 31) % 7, NodeId::new((i % 9) as usize), (i % 4) as u32))
            .collect();
        let mut oracle = keys.clone();
        oracle.sort();
        sort_tagged(&mut keys);
        assert_eq!(keys, oracle);
    }
}
