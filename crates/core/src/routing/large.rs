//! §6.1: routing messages of `ω(log n)` bits.
//!
//! "Splitting these values into multiple messages is a viable option …
//! a key of size Θ(log² n) would be split into Θ(log n) separate messages
//! permitting the receiver to reconstruct the key." Each word-sized
//! fragment of every large message is routed by its own Theorem 3.7
//! instance; `k`-word payloads therefore cost `k × 16` rounds, which is
//! asymptotically optimal as soon as nodes must move `Ω(n log n)` bits.

use crate::error::CoreError;
use crate::routing::general::route_deterministic;
use crate::routing::instance::{RoutedMessage, RoutingInstance};
use cc_sim::{Metrics, NodeId};

/// A message whose payload spans several machine words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LargeMessage {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Sequence number among the source's messages to this destination.
    pub seq: u32,
    /// The payload words (`len × Θ(log n)` bits).
    pub payload: Vec<u64>,
}

impl LargeMessage {
    /// Builds a large message.
    pub fn new(src: NodeId, dst: NodeId, seq: u32, payload: Vec<u64>) -> Self {
        LargeMessage {
            src,
            dst,
            seq,
            payload,
        }
    }
}

/// Outcome of a fragmented routing run.
#[derive(Debug)]
pub struct LargeOutcome {
    /// Reassembled deliveries per node.
    pub delivered: Vec<Vec<LargeMessage>>,
    /// Per-fragment-instance measurements, in fragment order.
    pub per_instance: Vec<Metrics>,
    /// Total communication rounds (= Σ per-instance rounds).
    pub total_rounds: u64,
}

/// Routes large messages by splitting every payload into word fragments
/// and running one 16-round Theorem 3.7 instance per fragment index.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInstance`] on shape violations (same caps
/// as [`RoutingInstance::new`], applied per fragment instance), and
/// propagates simulation/verification failures.
pub fn route_large_messages(
    n: usize,
    sends: Vec<Vec<LargeMessage>>,
) -> Result<LargeOutcome, CoreError> {
    if sends.len() != n {
        return Err(CoreError::invalid(format!(
            "expected {n} send lists, got {}",
            sends.len()
        )));
    }
    let max_words = sends
        .iter()
        .flatten()
        .map(|m| m.payload.len())
        .max()
        .unwrap_or(0);

    let mut per_instance = Vec::with_capacity(max_words);
    // Reassembly buffers keyed by (src, dst, seq).
    let mut assembled: Vec<std::collections::BTreeMap<(NodeId, NodeId, u32), Vec<u64>>> =
        (0..n).map(|_| std::collections::BTreeMap::new()).collect();

    for frag in 0..max_words {
        let frag_sends: Vec<Vec<RoutedMessage>> = sends
            .iter()
            .map(|list| {
                list.iter()
                    .filter(|m| frag < m.payload.len())
                    .map(|m| RoutedMessage::new(m.src, m.dst, m.seq, m.payload[frag]))
                    .collect()
            })
            .collect();
        let instance = RoutingInstance::new(n, frag_sends)?;
        let outcome = route_deterministic(&instance)?;
        for (k, list) in outcome.delivered.iter().enumerate() {
            for m in list {
                let slot = assembled[k].entry((m.src, m.dst, m.seq)).or_default();
                debug_assert_eq!(slot.len(), frag, "fragments arrive in order");
                slot.push(m.payload);
            }
        }
        per_instance.push(outcome.metrics);
    }

    let delivered = assembled
        .into_iter()
        .map(|buf| {
            buf.into_iter()
                .map(|((src, dst, seq), payload)| LargeMessage::new(src, dst, seq, payload))
                .collect()
        })
        .collect();
    let total_rounds = per_instance.iter().map(Metrics::comm_rounds).sum();
    Ok(LargeOutcome {
        delivered,
        per_instance,
        total_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_and_reassembles() {
        let n = 9;
        let words = 4;
        let sends: Vec<Vec<LargeMessage>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        LargeMessage::new(
                            NodeId::new(i),
                            NodeId::new(j),
                            0,
                            (0..words).map(|w| (i * 100 + j * 10 + w) as u64).collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        let out = route_large_messages(n, sends.clone()).unwrap();
        assert_eq!(out.per_instance.len(), words);
        assert!(out.total_rounds <= (words as u64) * 16);
        for k in 0..n {
            assert_eq!(out.delivered[k].len(), n);
            for m in &out.delivered[k] {
                assert_eq!(m.dst.index(), k);
                assert_eq!(m.payload.len(), words);
                let (i, j) = (m.src.index(), m.dst.index());
                let expect: Vec<u64> = (0..words).map(|w| (i * 100 + j * 10 + w) as u64).collect();
                assert_eq!(m.payload, expect);
            }
        }
    }

    #[test]
    fn ragged_payload_lengths() {
        let n = 4;
        let sends: Vec<Vec<LargeMessage>> = (0..n)
            .map(|i| {
                vec![LargeMessage::new(
                    NodeId::new(i),
                    NodeId::new((i + 1) % n),
                    0,
                    vec![7; i + 1],
                )]
            })
            .collect();
        let out = route_large_messages(n, sends).unwrap();
        assert_eq!(out.per_instance.len(), n);
        for k in 0..n {
            let src = (k + n - 1) % n;
            assert_eq!(out.delivered[k][0].payload.len(), src + 1);
        }
    }

    #[test]
    fn empty_input() {
        let out = route_large_messages(3, vec![Vec::new(); 3]).unwrap();
        assert_eq!(out.total_rounds, 0);
        assert!(out.delivered.iter().all(Vec::is_empty));
    }
}
