//! Algorithms 1 and 2 of the paper: the 16-round deterministic solution of
//! the Information Distribution Task on a clique whose size is a perfect
//! square `vn = s²`.
//!
//! Round schedule (communication rounds after activation; the numbers are
//! the paper's):
//!
//! | rounds | paper step                   | mechanism                            |
//! |--------|------------------------------|--------------------------------------|
//! | 1–2    | Alg 2, Step 1                | per-set count collection + broadcast |
//! | –      | Alg 2, Step 2 (local)        | König coloring of the set-level multigraph |
//! | 3–4    | Alg 2, Step 3                | [`GroupAnnounce`] of per-node counts |
//! | –      | Alg 2, Step 4 (local)        | König coloring of the within-set graph |
//! | 5–6    | Alg 2, Step 5                | [`KnownExchange`] within each set    |
//! | 7      | Alg 2, Step 6                | direct cross-set move                |
//! | 8–9    | Alg 1, Step 3 (announce)     | [`GroupAnnounce`] of per-set counts  |
//! | 10–11  | Alg 1, Step 3 (exchange)     | [`KnownExchange`] within each set    |
//! | 12     | Alg 1, Step 4                | direct move into destination sets    |
//! | 13–16  | Alg 1, Step 5 (Cor 3.4)      | [`SubsetExchange`] within each set   |
//!
//! The router runs in *virtual* node-id space so that Theorem 3.7's
//! general-`n` decomposition can embed two instances into one clique; the
//! caller translates ids and supplies a per-instance scope tag.

use crate::routing::instance::RoutedMessage;
use cc_coloring::{
    color_exact, exact_coloring_work, pad_demands_to_regular, BipartiteMultigraph, EdgeIndexer,
};
use cc_primitives::{
    AnnounceMsg, DemandMatrix, Driver, GroupAnnounce, KnownExchange, KxMsg, NodeGroup,
    SubsetExchange, SxMsg,
};
use cc_sim::hash::{combine, hash_u32s};
use cc_sim::util::{isqrt, word_bits};
use cc_sim::{BaseCtx, CommonScope, NodeId, Payload};
use std::sync::Arc;

/// A message annotated with its intermediate set assignment (σ), carried
/// between Algorithm 2's Steps 5 and 6.
#[derive(Clone, Debug)]
pub struct Inter<P> {
    msg: RoutedMessage<P>,
    set: u32,
}

impl<P: Payload> Payload for Inter<P> {
    fn size_bits(&self, n: usize) -> u64 {
        self.msg.size_bits(n) + word_bits(n)
    }
}

/// Messages of the square router (one variant per phase, so stray
/// cross-phase traffic is detected instead of misparsed).
#[allow(clippy::large_enum_variant)] // hot-path messages; boxing would cost more than the size skew
#[derive(Clone, Debug)]
pub enum SqMsg<P = u64> {
    /// Alg 2 Step 1a: a per-destination-set message count.
    Cnt(u64),
    /// Alg 2 Step 1b: a set-pair total, broadcast by its aggregator.
    Total(u64),
    /// Alg 2 Step 3 announce traffic.
    Ann2(KxMsg<AnnounceMsg>),
    /// Alg 2 Step 5 exchange traffic.
    Kx5(KxMsg<Inter<P>>),
    /// Alg 2 Step 6 direct move.
    Move6(Inter<P>),
    /// Alg 1 Step 3 announce traffic.
    Ann3(KxMsg<AnnounceMsg>),
    /// Alg 1 Step 3 exchange traffic.
    Kx3(KxMsg<RoutedMessage<P>>),
    /// Alg 1 Step 4 direct move.
    Move4(RoutedMessage<P>),
    /// Alg 1 Step 5 (Cor 3.4) traffic.
    Sx(SxMsg<RoutedMessage<P>>),
}

impl<P: Payload> Payload for SqMsg<P> {
    fn size_bits(&self, n: usize) -> u64 {
        4 + match self {
            SqMsg::Cnt(_) | SqMsg::Total(_) => 2 * word_bits(n),
            SqMsg::Ann2(m) | SqMsg::Ann3(m) => m.size_bits(n),
            SqMsg::Kx5(m) => m.size_bits(n),
            SqMsg::Move6(m) => m.size_bits(n),
            SqMsg::Kx3(m) => m.size_bits(n),
            SqMsg::Move4(m) => m.size_bits(n),
            SqMsg::Sx(m) => m.size_bits(n),
        }
    }
}

/// The globally shared Algorithm 2 Step 2 plan: a König coloring of the
/// set-level demand multigraph (`s × s` vertices, one edge per message).
struct SetPlan {
    indexer: EdgeIndexer,
    colors: Vec<u32>,
    padded_edges: usize,
    degree: u64,
    t_hash: u64,
}

fn build_set_plan(s: usize, t_counts: &[u32]) -> SetPlan {
    let t_hash = hash_u32s(t_counts);
    let m2 = {
        let dm = DemandMatrix::from_counts(s, t_counts.to_vec());
        dm.max_line_sum()
    };
    if m2 == 0 {
        return SetPlan {
            indexer: EdgeIndexer::new(s, s, t_counts),
            colors: Vec::new(),
            padded_edges: 0,
            degree: 0,
            t_hash,
        };
    }
    let m2_32 = u32::try_from(m2).expect("set totals fit u32");
    let extra = pad_demands_to_regular(s, s, t_counts, m2_32)
        .expect("line sums are bounded by m2 by definition");
    let padded: Vec<u32> = t_counts.iter().zip(&extra).map(|(a, b)| a + b).collect();
    let graph = BipartiteMultigraph::from_demands(s, s, &padded).expect("shape is s × s");
    let coloring = color_exact(&graph).expect("padded matrix is m2-regular");
    SetPlan {
        indexer: EdgeIndexer::new(s, s, &padded),
        colors: coloring.colors().to_vec(),
        padded_edges: graph.num_edges(),
        degree: m2,
        t_hash,
    }
}

/// The per-set plan derived after Algorithm 2 Step 3: per-member offsets
/// into the canonical set-level edge order, the within-set redistribution
/// graph (Step 4) and its coloring, and the Step 5 exchange demands.
struct SetLocal {
    /// `offsets[r·s + b]`: how many messages of lower-ranked members of
    /// this set go to destination set `b`.
    offsets: Vec<u64>,
    d4: DemandMatrix,
    idx4: EdgeIndexer,
    colors4: Vec<u32>,
    e5: DemandMatrix,
    work: u64,
}

fn build_set_local(s: usize, a: usize, set_plan: &SetPlan, cnt: &[Vec<u64>]) -> SetLocal {
    let mut offsets = vec![0u64; s * s];
    for b in 0..s {
        let mut acc = 0u64;
        for (rp, row) in cnt.iter().enumerate() {
            offsets[rp * s + b] = acc;
            acc += row[b];
        }
    }
    let mut work = (s * s) as u64;
    // Step 4 graph: one edge per message held in this set, joining its
    // holder to its Step 2 intermediate set σ.
    let mut d4 = DemandMatrix::new(s);
    for rp in 0..s {
        for b in 0..s {
            let off = offsets[rp * s + b];
            for k in 0..cnt[rp][b] {
                let e = set_plan.indexer.edge_id(a, b, (off + k) as usize);
                let sigma = (set_plan.colors[e] as usize) % s;
                d4.add(rp, sigma, 1);
            }
        }
    }
    work += d4.total();
    let m4 = d4.max_line_sum();
    let (idx4, colors4) = if m4 == 0 {
        (EdgeIndexer::new(s, s, d4.counts()), Vec::new())
    } else {
        let m4_32 = u32::try_from(m4).expect("d4 line sums fit u32");
        let extra = pad_demands_to_regular(s, s, d4.counts(), m4_32)
            .expect("line sums bounded by m4 by definition");
        let padded: Vec<u32> = d4.counts().iter().zip(&extra).map(|(x, y)| x + y).collect();
        let graph = BipartiteMultigraph::from_demands(s, s, &padded).expect("shape is s × s");
        let coloring = color_exact(&graph).expect("padded matrix is m4-regular");
        work += exact_coloring_work(graph.num_edges(), m4 as usize);
        (EdgeIndexer::new(s, s, &padded), coloring.colors().to_vec())
    };
    // Step 5 demands: member r' sends each message to the member indexed
    // by its Step 4 color mod s.
    let mut e5 = DemandMatrix::new(s);
    for rp in 0..s {
        for sigma in 0..s {
            for k4 in 0..d4.get(rp, sigma) {
                let c4 = colors4[idx4.edge_id(rp, sigma, k4 as usize)];
                e5.add(rp, (c4 as usize) % s, 1);
            }
        }
    }
    work += e5.total();
    SetLocal {
        offsets,
        d4,
        idx4,
        colors4,
        e5,
        work,
    }
}

/// The bound all payloads must satisfy to travel through the routers
/// (clonable, orderable for canonical sorting, shareable across the
/// common-knowledge cache).
pub trait RoutePayload: Payload + PartialEq + Eq + Ord + Send + Sync + 'static {}
impl<T: Payload + PartialEq + Eq + Ord + Send + Sync + 'static> RoutePayload for T {}

/// The 16-round square-clique router, operating in virtual id space.
pub(crate) struct SquareRouter<P = u64> {
    vn: usize,
    s: usize,
    vme: usize,
    /// My set index and rank within it.
    a: usize,
    r: usize,
    /// Per-instance disambiguator for common-knowledge scopes.
    tag: u64,
    call: u32,
    /// My messages bucketed by destination set (canonically sorted).
    buckets: Vec<Vec<RoutedMessage<P>>>,
    t_counts: Vec<u32>,
    set_plan: Option<Arc<SetPlan>>,
    ann2: Option<GroupAnnounce>,
    kx5: Option<KnownExchange<Inter<P>>>,
    /// Messages held after Step 6, bucketed by destination set.
    held: Vec<Vec<RoutedMessage<P>>>,
    ann3: Option<GroupAnnounce>,
    kx3: Option<KnownExchange<RoutedMessage<P>>>,
    sx: Option<SubsetExchange<RoutedMessage<P>>>,
}

/// Per-round result of the square router: virtual-id sends plus the final
/// delivery.
pub(crate) type SqStep<P> = (Vec<(usize, SqMsg<P>)>, Option<Vec<RoutedMessage<P>>>);

impl<P: RoutePayload> SquareRouter<P> {
    /// Total communication rounds of the square algorithm (Theorem 3.7).
    pub(crate) const ROUNDS: u32 = 16;

    /// Creates the router for virtual node `vme` of a `vn = s²` clique.
    /// `messages` carry virtual ids in `src`/`dst`; `tag` disambiguates
    /// concurrent instances in the common-knowledge cache.
    ///
    /// # Panics
    ///
    /// Panics if `vn` is not a perfect square or a message is misaddressed.
    pub(crate) fn new(vn: usize, vme: usize, messages: Vec<RoutedMessage<P>>, tag: u64) -> Self {
        let s = isqrt(vn);
        assert_eq!(s * s, vn, "SquareRouter requires a perfect square size");
        let mut buckets: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); s];
        for m in messages {
            assert_eq!(m.src.index(), vme, "message not owned by this node");
            assert!(m.dst.index() < vn, "destination outside the instance");
            buckets[m.dst.index() / s].push(m);
        }
        for b in &mut buckets {
            crate::sortkey::sort_routed(b);
        }
        SquareRouter {
            vn,
            s,
            vme,
            a: vme / s,
            r: vme % s,
            tag,
            call: 0,
            buckets,
            t_counts: vec![0; s * s],
            set_plan: None,
            ann2: None,
            kx5: None,
            held: Vec::new(),
            ann3: None,
            kx3: None,
            sx: None,
        }
    }

    fn my_group(&self) -> NodeGroup {
        NodeGroup::contiguous(self.a * self.s, self.s)
    }

    fn scope(&self, label: &'static str) -> CommonScope {
        CommonScope::new(label, self.tag)
    }

    /// Queues the Algorithm 2 Step 1a sends. `ctx` must be virtualized to
    /// this instance (`ctx.n() == vn`, `ctx.me() == vme`).
    pub(crate) fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(usize, SqMsg<P>)> {
        debug_assert_eq!(ctx.n(), self.vn);
        debug_assert_eq!(ctx.me().index(), self.vme);
        let total: u64 = self.buckets.iter().map(|b| b.len() as u64).sum();
        ctx.charge_work(total);
        ctx.note_mem(5 * total);
        // Send my count toward destination set i to the i-th member of my
        // own set, which aggregates T[a][i].
        (0..self.s)
            .map(|i| {
                (
                    self.a * self.s + i,
                    SqMsg::Cnt(self.buckets[i].len() as u64),
                )
            })
            .collect()
    }

    /// Advances one round; see the module table for the schedule.
    pub(crate) fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
    ) -> SqStep<P> {
        debug_assert_eq!(ctx.n(), self.vn);
        self.call += 1;
        match self.call {
            1 => (self.step1_aggregate(ctx, inbox), None),
            2 => (self.step1_totals_then_announce(ctx, inbox), None),
            3 => (self.drive_ann2(ctx, inbox, false), None),
            4 => (self.drive_ann2(ctx, inbox, true), None),
            5 => (self.drive_kx5(ctx, inbox, false), None),
            6 => (self.drive_kx5(ctx, inbox, true), None),
            7 => (self.step6_receive_then_announce(ctx, inbox), None),
            8 => (self.drive_ann3(ctx, inbox, false), None),
            9 => (self.drive_ann3(ctx, inbox, true), None),
            10 => (self.drive_kx3(ctx, inbox, false), None),
            11 => (self.drive_kx3(ctx, inbox, true), None),
            12 => (self.step4_receive_then_subset(ctx, inbox), None),
            13..=15 => (self.drive_sx(ctx, inbox), None),
            16 => {
                let (sends, out) = self.finish_sx(ctx, inbox);
                (sends, Some(out))
            }
            _ => panic!("SquareRouter stepped past completion"),
        }
    }

    /// Call 1: aggregate the counts addressed to me (I am the `r`-th
    /// member of my set, so I collect `T[a][r]`) and broadcast the total.
    fn step1_aggregate(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
    ) -> Vec<(usize, SqMsg<P>)> {
        let mut total = 0u64;
        for (src, msg) in inbox {
            let SqMsg::Cnt(c) = msg else {
                panic!("unexpected message in Step 1a: {msg:?}");
            };
            debug_assert_eq!(src / self.s, self.a, "counts come from my own set");
            total += c;
        }
        ctx.charge_work(self.s as u64);
        (0..self.vn).map(|v| (v, SqMsg::Total(total))).collect()
    }

    /// Call 2: assemble the full `T` matrix, compute the global Step 2
    /// plan, and launch the Step 3 announce.
    fn step1_totals_then_announce(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
    ) -> Vec<(usize, SqMsg<P>)> {
        for (src, msg) in inbox {
            let SqMsg::Total(t) = msg else {
                panic!("unexpected message in Step 1b: {msg:?}");
            };
            // Sender src = (set a', rank i') announced T[a'][i'].
            self.t_counts[src] = u32::try_from(t).expect("set totals fit u32");
        }
        let s = self.s;
        let t_ref = self.t_counts.clone();
        let plan: Arc<SetPlan> = ctx.common().get_or_compute(
            self.scope("route.sq.setplan"),
            hash_u32s(&self.t_counts),
            move || build_set_plan(s, &t_ref),
        );
        ctx.charge_work(exact_coloring_work(plan.padded_edges, plan.degree as usize));
        ctx.note_mem(plan.padded_edges as u64);
        self.set_plan = Some(plan);

        let values: Vec<u64> = self.buckets.iter().map(|b| b.len() as u64).collect();
        let mut ann =
            GroupAnnounce::member(self.my_group(), self.r, values, self.scope("route.sq.ann2"));
        let sends = ann.activate(ctx);
        self.ann2 = Some(ann);
        wrap(sends, SqMsg::Ann2)
    }

    fn drive_ann2(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
        expect_done: bool,
    ) -> Vec<(usize, SqMsg<P>)> {
        let msgs = unwrap(inbox, |m| match m {
            SqMsg::Ann2(x) => x,
            other => panic!("unexpected message during Step 3 announce: {other:?}"),
        });
        let step = self.ann2.as_mut().expect("ann2 active").on_round(ctx, msgs);
        if !expect_done {
            debug_assert!(step.output.is_none());
            return wrap(step.sends, SqMsg::Ann2);
        }
        let cnt = step.output.expect("announce completes on second round");
        self.after_ann2(ctx, cnt)
    }

    /// Local Step 4 + launch of the Step 5 exchange.
    fn after_ann2(&mut self, ctx: &mut BaseCtx<'_>, cnt: Vec<Vec<u64>>) -> Vec<(usize, SqMsg<P>)> {
        let s = self.s;
        let a = self.a;
        let set_plan = self.set_plan.clone().expect("set plan computed at call 2");
        let cnt_hash = {
            let flat: Vec<u32> = cnt
                .iter()
                .flat_map(|row| row.iter().map(|&v| v as u32))
                .collect();
            hash_u32s(&flat)
        };
        let plan_ref = set_plan.clone();
        let local: Arc<SetLocal> = ctx.common().get_or_compute(
            CommonScope::new("route.sq.setlocal", combine(self.tag, a as u64)),
            combine(set_plan.t_hash, cnt_hash),
            move || build_set_local(s, a, &plan_ref, &cnt),
        );
        ctx.charge_work(local.work);
        ctx.note_mem(local.d4.total() + local.colors4.len() as u64);

        // Bind my own messages to Step 4 colors, producing the Step 5
        // outgoing buckets (canonical (b, k) enumeration — identical to
        // the one inside build_set_local).
        let mut per_sigma = vec![0u32; s];
        let mut outgoing: Vec<Vec<Inter<P>>> = vec![Vec::new(); s];
        let mut moved = 0u64;
        for b in 0..s {
            let off = local.offsets[self.r * s + b];
            for (k, m) in self.buckets[b].drain(..).enumerate() {
                let e = set_plan.indexer.edge_id(a, b, (off + k as u64) as usize);
                let sigma = (set_plan.colors[e] as usize) % s;
                let k4 = per_sigma[sigma];
                per_sigma[sigma] += 1;
                let c4 = local.colors4[local.idx4.edge_id(self.r, sigma, k4 as usize)];
                outgoing[(c4 as usize) % s].push(Inter {
                    msg: m,
                    set: sigma as u32,
                });
                moved += 1;
            }
        }
        ctx.charge_work(moved);
        let mut kx = KnownExchange::member(
            self.my_group(),
            local.e5.clone(),
            outgoing,
            self.scope("route.sq.kx5"),
        );
        let sends = kx.activate(ctx);
        self.kx5 = Some(kx);
        wrap(sends, SqMsg::Kx5)
    }

    fn drive_kx5(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
        expect_done: bool,
    ) -> Vec<(usize, SqMsg<P>)> {
        let msgs = unwrap(inbox, |m| match m {
            SqMsg::Kx5(x) => x,
            other => panic!("unexpected message during Step 5 exchange: {other:?}"),
        });
        let step = self.kx5.as_mut().expect("kx5 active").on_round(ctx, msgs);
        if !expect_done {
            debug_assert!(step.output.is_none());
            return wrap(step.sends, SqMsg::Kx5);
        }
        // Step 6: each node holds ≈ s messages per intermediate set σ;
        // send the j-th (canonical order) to member j mod s of W_σ.
        let received = step.output.expect("exchange completes on second round");
        let s = self.s;
        let mut by_sigma: Vec<Vec<Inter<P>>> = vec![Vec::new(); s];
        for it in received {
            by_sigma[it.set as usize].push(it);
        }
        let mut sends = Vec::new();
        for (sigma, mut items) in by_sigma.into_iter().enumerate() {
            crate::sortkey::sort_by_routed_key(&mut items, |it| &it.msg);
            debug_assert!(
                items.len() <= 4 * s + 4,
                "per-σ load {} exceeds the O(s) bound",
                items.len()
            );
            for (j, it) in items.into_iter().enumerate() {
                sends.push((sigma * s + (j % s), SqMsg::Move6(it)));
            }
        }
        ctx.charge_work(sends.len() as u64);
        sends
    }

    /// Call 7: collect Step 6 arrivals (I am now an intermediate holder
    /// for my own set) and launch the Algorithm 1 Step 3 announce.
    fn step6_receive_then_announce(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
    ) -> Vec<(usize, SqMsg<P>)> {
        let s = self.s;
        self.held = vec![Vec::new(); s];
        for (_, msg) in inbox {
            let SqMsg::Move6(it) = msg else {
                panic!("unexpected message in Step 6: {msg:?}");
            };
            debug_assert_eq!(it.set as usize, self.a, "Step 6 delivered to wrong set");
            self.held[it.msg.dst.index() / s].push(it.msg);
        }
        let mut total = 0u64;
        for bucket in &mut self.held {
            crate::sortkey::sort_routed(bucket);
            total += bucket.len() as u64;
        }
        ctx.charge_work(total);
        ctx.note_mem(5 * total);
        let values: Vec<u64> = self.held.iter().map(|b| b.len() as u64).collect();
        let mut ann =
            GroupAnnounce::member(self.my_group(), self.r, values, self.scope("route.sq.ann3"));
        let sends = ann.activate(ctx);
        self.ann3 = Some(ann);
        wrap(sends, SqMsg::Ann3)
    }

    fn drive_ann3(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
        expect_done: bool,
    ) -> Vec<(usize, SqMsg<P>)> {
        let msgs = unwrap(inbox, |m| match m {
            SqMsg::Ann3(x) => x,
            other => panic!("unexpected message during Alg 1 Step 3 announce: {other:?}"),
        });
        let step = self.ann3.as_mut().expect("ann3 active").on_round(ctx, msgs);
        if !expect_done {
            debug_assert!(step.output.is_none());
            return wrap(step.sends, SqMsg::Ann3);
        }
        let cnt = step.output.expect("announce completes on second round");
        self.after_ann3(ctx, cnt)
    }

    /// Local chunking for Alg 1 Step 3, then launch its exchange: the
    /// set's messages for each destination set `b` are split into `s`
    /// nearly equal contiguous chunks, chunk `i` going to member `i`.
    fn after_ann3(&mut self, ctx: &mut BaseCtx<'_>, cnt: Vec<Vec<u64>>) -> Vec<(usize, SqMsg<P>)> {
        let s = self.s;
        let mut d3 = DemandMatrix::new(s);
        let mut prefixes = vec![0u64; s * s];
        for b in 0..s {
            let mut acc = 0u64;
            for (rp, row) in cnt.iter().enumerate() {
                prefixes[rp * s + b] = acc;
                acc += row[b];
            }
            let total = acc;
            if total == 0 {
                continue;
            }
            let chunk = total.div_ceil(s as u64);
            for rp in 0..s {
                let lo = prefixes[rp * s + b];
                let hi = lo + cnt[rp][b];
                let mut p = lo;
                while p < hi {
                    let i = (p / chunk) as usize;
                    let next = ((i as u64 + 1) * chunk).min(hi);
                    d3.add(rp, i, (next - p) as u32);
                    p = next;
                }
            }
        }
        ctx.charge_work((s * s) as u64 + d3.total());

        let mut outgoing: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); s];
        for b in 0..s {
            let total: u64 = cnt.iter().map(|row| row[b]).sum();
            if total == 0 {
                continue;
            }
            let chunk = total.div_ceil(s as u64);
            let base = prefixes[self.r * s + b];
            for (idx, m) in self.held[b].drain(..).enumerate() {
                let i = ((base + idx as u64) / chunk) as usize;
                outgoing[i].push(m);
            }
        }
        let mut kx =
            KnownExchange::member(self.my_group(), d3, outgoing, self.scope("route.sq.kx3"));
        let sends = kx.activate(ctx);
        self.kx3 = Some(kx);
        wrap(sends, SqMsg::Kx3)
    }

    fn drive_kx3(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
        expect_done: bool,
    ) -> Vec<(usize, SqMsg<P>)> {
        let msgs = unwrap(inbox, |m| match m {
            SqMsg::Kx3(x) => x,
            other => panic!("unexpected message during Alg 1 Step 3 exchange: {other:?}"),
        });
        let step = self.kx3.as_mut().expect("kx3 active").on_round(ctx, msgs);
        if !expect_done {
            debug_assert!(step.output.is_none());
            return wrap(step.sends, SqMsg::Kx3);
        }
        // Alg 1 Step 4: the j-th of my messages for destination set b
        // goes to member j mod s of W_b.
        let received = step.output.expect("exchange completes on second round");
        let s = self.s;
        let mut by_b: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); s];
        for m in received {
            by_b[m.dst.index() / s].push(m);
        }
        let mut sends = Vec::new();
        for (b, mut items) in by_b.into_iter().enumerate() {
            crate::sortkey::sort_routed(&mut items);
            debug_assert!(
                items.len() <= 4 * s + 4,
                "per-set chunk {} exceeds the O(s) bound",
                items.len()
            );
            for (j, m) in items.into_iter().enumerate() {
                sends.push((b * s + (j % s), SqMsg::Move4(m)));
            }
        }
        ctx.charge_work(sends.len() as u64);
        sends
    }

    /// Call 12: collect Step 4 arrivals (all destined within my set) and
    /// launch the final Corollary 3.4 exchange.
    fn step4_receive_then_subset(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
    ) -> Vec<(usize, SqMsg<P>)> {
        let s = self.s;
        let mut outgoing: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); s];
        for (_, msg) in inbox {
            let SqMsg::Move4(m) = msg else {
                panic!("unexpected message in Step 4: {msg:?}");
            };
            debug_assert_eq!(m.dst.index() / s, self.a, "Step 4 delivered to wrong set");
            outgoing[m.dst.index() % s].push(m);
        }
        ctx.charge_work(outgoing.iter().map(|o| o.len() as u64).sum());
        let mut sx =
            SubsetExchange::member(self.my_group(), self.r, outgoing, self.scope("route.sq.sx"));
        let sends = sx.activate(ctx);
        self.sx = Some(sx);
        wrap(sends, SqMsg::Sx)
    }

    fn drive_sx(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
    ) -> Vec<(usize, SqMsg<P>)> {
        let msgs = unwrap(inbox, |m| match m {
            SqMsg::Sx(x) => x,
            other => panic!("unexpected message during Alg 1 Step 5: {other:?}"),
        });
        let step = self.sx.as_mut().expect("sx active").on_round(ctx, msgs);
        debug_assert!(step.output.is_none());
        wrap(step.sends, SqMsg::Sx)
    }

    fn finish_sx(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, SqMsg<P>)>,
    ) -> (Vec<(usize, SqMsg<P>)>, Vec<RoutedMessage<P>>) {
        let msgs = unwrap(inbox, |m| match m {
            SqMsg::Sx(x) => x,
            other => panic!("unexpected message during Alg 1 Step 5: {other:?}"),
        });
        let step = self.sx.as_mut().expect("sx active").on_round(ctx, msgs);
        let delivered = step.output.expect("subset exchange completes on call 16");
        debug_assert!(step.sends.is_empty());
        debug_assert!(
            delivered.iter().all(|m| m.dst.index() == self.vme),
            "a message was delivered to the wrong node"
        );
        ctx.charge_work(delivered.len() as u64);
        (Vec::new(), delivered)
    }
}

fn wrap<P, M>(sends: Vec<(NodeId, M)>, f: impl Fn(M) -> SqMsg<P>) -> Vec<(usize, SqMsg<P>)> {
    sends
        .into_iter()
        .map(|(dst, m)| (dst.index(), f(m)))
        .collect()
}

fn unwrap<P, M>(inbox: Vec<(usize, SqMsg<P>)>, f: impl Fn(SqMsg<P>) -> M) -> Vec<(NodeId, M)> {
    inbox
        .into_iter()
        .map(|(src, m)| (NodeId::new(src), f(m)))
        .collect()
}
