//! Theorem 5.4: routing in 12 rounds with `O(n log n)` local computation
//! and memory per node (§5 of the paper).
//!
//! Three devices replace the heavyweight steps of the basic algorithm:
//!
//! 1. **Grouped set-level coloring** (Lemma 5.3): instead of one
//!    multigraph edge per message (`n²` edges), messages from set `W_a` to
//!    set `W_b` are packed into `⌊T_ab/n⌋ + 3` *groups* of up to `n`
//!    slots, and only the `O(n)`-edge group graph is colored. The
//!    `+3` rounds partial groups up, which subsumes the paper's separate
//!    residual-delivery path (footnote 6) at a constant-factor quota
//!    increase.
//! 2. **Oblivious round-robin scatter** (Lemma 5.1 / Corollary 5.2): the
//!    within-set balancing steps drop their count announcements and König
//!    plans entirely; each node spreads its messages round-robin, which
//!    bounds every per-(node, class) load by `class-total/√n + √n`. Each
//!    node then binds its messages to groups through a *striped* slot
//!    numbering (`slot = j·√n + rank`), so group membership needs no
//!    global coordination.
//! 3. **Bundled exchanges** (footnote 3): the final Corollary 3.4
//!    delivery colors a bundle graph with `O(n)` edges instead of one
//!    edge per message.
//!
//! Round schedule: Step 1 counts (2) + scatter (2) + cross-set move (1)
//! + scatter (2) + move into destination sets (1) + Cor 3.4 (4) = **12**.

use crate::error::CoreError;
use crate::exec::Exec;
use crate::routing::general::{CrossRouter, CxMsg, RouteOutcome};
use crate::routing::instance::{RoutedMessage, RoutingInstance};
use crate::routing::square::RoutePayload;
use cc_coloring::{
    color_exact, exact_coloring_work, pad_demands_to_regular, BipartiteMultigraph, EdgeIndexer,
};
use cc_primitives::{
    DemandMatrix, Driver, NodeGroup, RoundRobinScatter, ScatterMsg, SubsetExchange, SxMsg,
};
use cc_sim::hash::hash_u32s;
use cc_sim::util::{is_square, isqrt, word_bits};
use cc_sim::{BaseCtx, CliqueSpec, CommonScope, Ctx, Inbox, NodeId, NodeMachine, Payload, Step};
use std::sync::Arc;

/// Messages of the optimized square router.
#[allow(clippy::large_enum_variant)] // hot-path messages; boxing would cost more than the size skew
#[derive(Clone, Debug)]
pub enum OptMsg<P = u64> {
    /// Step 1a: per-destination-set count.
    Cnt(u64),
    /// Step 1b: set-pair total broadcast.
    Total(u64),
    /// First within-set scatter (replaces Alg 2 Steps 3–5).
    Sc1(ScatterMsg<RoutedMessage<P>>),
    /// Cross-set move (Alg 2 Step 6).
    Move6(RoutedMessage<P>),
    /// Second within-set scatter (replaces Alg 1 Step 3).
    Sc2(ScatterMsg<RoutedMessage<P>>),
    /// Move into destination sets (Alg 1 Step 4).
    Move4(RoutedMessage<P>),
    /// Final Cor 3.4 exchange (bundled).
    Sx(SxMsg<RoutedMessage<P>>),
}

impl<P: Payload> Payload for OptMsg<P> {
    fn size_bits(&self, n: usize) -> u64 {
        3 + match self {
            OptMsg::Cnt(_) | OptMsg::Total(_) => 2 * word_bits(n),
            OptMsg::Sc1(m) | OptMsg::Sc2(m) => m.size_bits(n),
            OptMsg::Move6(m) | OptMsg::Move4(m) => m.size_bits(n),
            OptMsg::Sx(m) => m.size_bits(n),
        }
    }
}

/// The grouped Step 2 plan: a König coloring of the `O(√n)`-degree group
/// graph; group `g` of cell `(a, b)` is routed via intermediate set
/// `color(a, b, g) mod s`.
struct GroupPlan {
    idx: EdgeIndexer,
    colors: Vec<u32>,
    edges: usize,
    degree: u64,
}

fn build_group_plan(s: usize, n: usize, t_counts: &[u32]) -> GroupPlan {
    // Group counts: ⌊T/n⌋ + 3 covers the maximum striped slot T + 2n.
    let groups: Vec<u32> = t_counts
        .iter()
        .map(|&t| {
            if t == 0 {
                0
            } else {
                (t as usize / n + 3) as u32
            }
        })
        .collect();
    let gm = DemandMatrix::from_counts(s, groups.clone());
    let degree = gm.max_line_sum();
    if degree == 0 {
        return GroupPlan {
            idx: EdgeIndexer::new(s, s, &groups),
            colors: Vec::new(),
            edges: 0,
            degree: 0,
        };
    }
    let d32 = u32::try_from(degree).expect("group degree fits u32");
    let extra = pad_demands_to_regular(s, s, &groups, d32).expect("line sums bounded by degree");
    let padded: Vec<u32> = groups.iter().zip(&extra).map(|(a, b)| a + b).collect();
    let graph = BipartiteMultigraph::from_demands(s, s, &padded).expect("shape is s × s");
    let coloring = color_exact(&graph).expect("padded matrix is regular");
    GroupPlan {
        idx: EdgeIndexer::new(s, s, &padded),
        colors: coloring.colors().to_vec(),
        edges: graph.num_edges(),
        degree,
    }
}

/// The 12-round computation-optimal square router (virtual id space).
pub(crate) struct OptSquareRouter<P = u64> {
    vn: usize,
    s: usize,
    vme: usize,
    a: usize,
    r: usize,
    tag: u64,
    call: u32,
    /// My messages, sorted by (destination set, key); consumed at call 2.
    messages: Vec<RoutedMessage<P>>,
    /// Per-destination-set counts of my input (for Step 1a).
    counts: Vec<u64>,
    t_counts: Vec<u32>,
    plan: Option<Arc<GroupPlan>>,
    sc1: Option<RoundRobinScatter<RoutedMessage<P>>>,
    sc2: Option<RoundRobinScatter<RoutedMessage<P>>>,
    sx: Option<SubsetExchange<RoutedMessage<P>>>,
}

impl<P: RoutePayload> OptSquareRouter<P> {
    pub(crate) const ROUNDS: u32 = 12;

    pub(crate) fn new(
        vn: usize,
        vme: usize,
        mut messages: Vec<RoutedMessage<P>>,
        tag: u64,
    ) -> Self {
        let s = isqrt(vn);
        assert_eq!(s * s, vn, "OptSquareRouter requires a perfect square size");
        let mut counts = vec![0u64; s];
        for m in &messages {
            assert_eq!(m.src.index(), vme, "message not owned by this node");
            counts[m.dst.index() / s] += 1;
        }
        crate::sortkey::sort_routed_by_set(&mut messages, s);
        OptSquareRouter {
            vn,
            s,
            vme,
            a: vme / s,
            r: vme % s,
            tag,
            call: 0,
            messages,
            counts,
            t_counts: vec![0; s * s],
            plan: None,
            sc1: None,
            sc2: None,
            sx: None,
        }
    }

    fn my_group(&self) -> NodeGroup {
        NodeGroup::contiguous(self.a * self.s, self.s)
    }

    pub(crate) fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(usize, OptMsg<P>)> {
        debug_assert_eq!(ctx.n(), self.vn);
        ctx.charge_work(self.messages.len() as u64);
        ctx.note_mem(5 * self.messages.len() as u64);
        (0..self.s)
            .map(|i| (self.a * self.s + i, OptMsg::Cnt(self.counts[i])))
            .collect()
    }

    pub(crate) fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, OptMsg<P>)>,
    ) -> (Vec<(usize, OptMsg<P>)>, Option<Vec<RoutedMessage<P>>>) {
        self.call += 1;
        match self.call {
            1 => {
                let mut total = 0u64;
                for (_, msg) in inbox {
                    let OptMsg::Cnt(c) = msg else {
                        panic!("unexpected message in Step 1a: {msg:?}");
                    };
                    total += c;
                }
                ctx.charge_work(self.s as u64);
                (
                    (0..self.vn).map(|v| (v, OptMsg::Total(total))).collect(),
                    None,
                )
            }
            2 => {
                for (src, msg) in inbox {
                    let OptMsg::Total(t) = msg else {
                        panic!("unexpected message in Step 1b: {msg:?}");
                    };
                    self.t_counts[src] = u32::try_from(t).expect("set totals fit u32");
                }
                let (s, vn) = (self.s, self.vn);
                let t_ref = self.t_counts.clone();
                let plan: Arc<GroupPlan> = ctx.common().get_or_compute(
                    CommonScope::new("route.opt.groupplan", self.tag),
                    hash_u32s(&self.t_counts),
                    move || build_group_plan(s, vn, &t_ref),
                );
                ctx.charge_work(exact_coloring_work(plan.edges, plan.degree as usize));
                ctx.note_mem(plan.edges as u64);
                self.plan = Some(plan);
                // First scatter: messages already sorted by destination
                // set — Lemma 5.1's required class order.
                let mut sc =
                    RoundRobinScatter::member(self.my_group(), std::mem::take(&mut self.messages));
                let sends = sc.activate(ctx);
                self.sc1 = Some(sc);
                (wrap(sends, OptMsg::Sc1), None)
            }
            3 => (self.drive_sc1(ctx, inbox, false), None),
            4 => (self.drive_sc1(ctx, inbox, true), None),
            5 => {
                // Step 6 arrivals: I hold messages within my set (their
                // intermediate); start the second scatter, classed by
                // final destination set.
                let mut held = Vec::new();
                for (_, msg) in inbox {
                    let OptMsg::Move6(m) = msg else {
                        panic!("unexpected message in Step 6: {msg:?}");
                    };
                    held.push(m);
                }
                crate::sortkey::sort_routed_by_set(&mut held, self.s);
                ctx.charge_work(held.len() as u64);
                ctx.note_mem(5 * held.len() as u64);
                let mut sc = RoundRobinScatter::member(self.my_group(), held);
                let sends = sc.activate(ctx);
                self.sc2 = Some(sc);
                (wrap(sends, OptMsg::Sc2), None)
            }
            6 => (self.drive_sc2(ctx, inbox, false), None),
            7 => (self.drive_sc2(ctx, inbox, true), None),
            8 => {
                // Step 4 arrivals: everything is destined within my set;
                // run the final bundled Cor 3.4 exchange.
                let s = self.s;
                let mut outgoing: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); s];
                for (_, msg) in inbox {
                    let OptMsg::Move4(m) = msg else {
                        panic!("unexpected message in Step 4: {msg:?}");
                    };
                    debug_assert_eq!(m.dst.index() / s, self.a, "Step 4 misrouted");
                    outgoing[m.dst.index() % s].push(m);
                }
                ctx.charge_work(outgoing.iter().map(|o| o.len() as u64).sum());
                let mut sx = SubsetExchange::member_bundled(
                    self.my_group(),
                    self.r,
                    outgoing,
                    CommonScope::new("route.opt.sx", self.tag),
                );
                let sends = sx.activate(ctx);
                self.sx = Some(sx);
                (wrap(sends, OptMsg::Sx), None)
            }
            9..=11 => {
                let step = self.sx.as_mut().expect("sx active").on_round(
                    ctx,
                    unwrap(inbox, |m| match m {
                        OptMsg::Sx(x) => x,
                        other => panic!("unexpected message in final exchange: {other:?}"),
                    }),
                );
                debug_assert!(step.output.is_none());
                (wrap(step.sends, OptMsg::Sx), None)
            }
            12 => {
                let step = self.sx.as_mut().expect("sx active").on_round(
                    ctx,
                    unwrap(inbox, |m| match m {
                        OptMsg::Sx(x) => x,
                        other => panic!("unexpected message in final exchange: {other:?}"),
                    }),
                );
                let delivered = step.output.expect("exchange completes at call 12");
                debug_assert!(delivered.iter().all(|m| m.dst.index() == self.vme));
                ctx.charge_work(delivered.len() as u64);
                (Vec::new(), Some(delivered))
            }
            _ => panic!("OptSquareRouter stepped past completion"),
        }
    }

    /// Drives the first scatter; on completion binds every held message
    /// to its group via the striped slot numbering and executes the
    /// cross-set move (Alg 2 Step 6).
    fn drive_sc1(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, OptMsg<P>)>,
        expect_done: bool,
    ) -> Vec<(usize, OptMsg<P>)> {
        let step = self.sc1.as_mut().expect("sc1 active").on_round(
            ctx,
            unwrap(inbox, |m| match m {
                OptMsg::Sc1(x) => x,
                other => panic!("unexpected message in first scatter: {other:?}"),
            }),
        );
        if !expect_done {
            debug_assert!(step.output.is_none());
            return wrap(step.sends, OptMsg::Sc1);
        }
        let mut held = step.output.expect("scatter completes on second round");
        let (s, vn) = (self.s, self.vn);
        let plan = self.plan.as_ref().expect("group plan from call 2");
        // Striped slot binding: my j-th class-b message occupies virtual
        // slot j·s + r of cell (a, b); its group is slot / n.
        crate::sortkey::sort_routed_by_set(&mut held, s);
        let mut by_sigma: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); s];
        let mut class_pos = vec![0usize; s];
        for m in held {
            let b = m.dst.index() / s;
            let j = class_pos[b];
            class_pos[b] += 1;
            let slot = j * s + self.r;
            let group = slot / vn;
            let edge = plan.idx.edge_id(self.a, b, group);
            let sigma = (plan.colors[edge] as usize) % s;
            by_sigma[sigma].push(m);
        }
        let mut sends = Vec::new();
        for (sigma, items) in by_sigma.into_iter().enumerate() {
            for (j, m) in items.into_iter().enumerate() {
                sends.push((sigma * s + (j % s), OptMsg::Move6(m)));
            }
        }
        ctx.charge_work(sends.len() as u64);
        sends
    }

    /// Drives the second scatter; on completion executes Alg 1 Step 4.
    fn drive_sc2(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(usize, OptMsg<P>)>,
        expect_done: bool,
    ) -> Vec<(usize, OptMsg<P>)> {
        let step = self.sc2.as_mut().expect("sc2 active").on_round(
            ctx,
            unwrap(inbox, |m| match m {
                OptMsg::Sc2(x) => x,
                other => panic!("unexpected message in second scatter: {other:?}"),
            }),
        );
        if !expect_done {
            debug_assert!(step.output.is_none());
            return wrap(step.sends, OptMsg::Sc2);
        }
        let held = step.output.expect("scatter completes on second round");
        let s = self.s;
        let mut by_b: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); s];
        for m in held {
            by_b[m.dst.index() / s].push(m);
        }
        let mut sends = Vec::new();
        for (b, mut items) in by_b.into_iter().enumerate() {
            crate::sortkey::sort_routed(&mut items);
            for (j, m) in items.into_iter().enumerate() {
                sends.push((b * s + (j % s), OptMsg::Move4(m)));
            }
        }
        ctx.charge_work(sends.len() as u64);
        sends
    }
}

fn wrap<P, M>(sends: Vec<(NodeId, M)>, f: impl Fn(M) -> OptMsg<P>) -> Vec<(usize, OptMsg<P>)> {
    sends.into_iter().map(|(d, m)| (d.index(), f(m))).collect()
}

fn unwrap<P, M>(inbox: Vec<(usize, OptMsg<P>)>, f: impl Fn(OptMsg<P>) -> M) -> Vec<(NodeId, M)> {
    inbox
        .into_iter()
        .map(|(src, m)| (NodeId::new(src), f(m)))
        .collect()
}

/// Messages of the general optimized router.
#[derive(Clone, Debug)]
pub enum OGMsg<P = u64> {
    /// First (or only) square instance.
    I1(OptMsg<P>),
    /// Second, id-shifted square instance.
    I2(OptMsg<P>),
    /// Cross-procedure traffic.
    Cross(CxMsg<P>),
    /// Tiny-`n` direct delivery.
    Direct(RoutedMessage<P>),
}

impl<P: Payload> Payload for OGMsg<P> {
    fn size_bits(&self, n: usize) -> u64 {
        2 + match self {
            OGMsg::I1(m) | OGMsg::I2(m) => m.size_bits(n),
            OGMsg::Cross(m) => m.size_bits(n),
            OGMsg::Direct(m) => m.size_bits(n),
        }
    }
}

enum OptInner<P> {
    Tiny {
        queues: Vec<Vec<RoutedMessage<P>>>,
        delivered: Vec<RoutedMessage<P>>,
        rounds_total: u32,
        call: u32,
    },
    Square(OptSquareRouter<P>),
    Split {
        q2: usize,
        off2: usize,
        i1: Option<OptSquareRouter<P>>,
        i2: Option<OptSquareRouter<P>>,
        cross: CrossRouter<P>,
        out1: Option<Vec<RoutedMessage<P>>>,
        out2: Option<Vec<RoutedMessage<P>>>,
        out3: Option<Vec<RoutedMessage<P>>>,
        call: u32,
    },
}

/// Per-node machine of the 12-round, `O(n log n)`-work router
/// (Theorem 5.4).
pub struct OptRouterMachine<P = u64> {
    inner: OptInner<P>,
}

impl<P: RoutePayload> OptRouterMachine<P> {
    /// Builds the machine for node `me` of `instance`.
    pub fn new(instance: &RoutingInstance<P>, me: NodeId) -> Self {
        let n = instance.n();
        let my_msgs = instance.sends(me.index()).to_vec();
        if n <= 3 {
            let mut queues: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); n];
            for m in my_msgs {
                queues[m.dst.index()].push(m);
            }
            return OptRouterMachine {
                inner: OptInner::Tiny {
                    queues,
                    delivered: Vec::new(),
                    rounds_total: n as u32,
                    call: 0,
                },
            };
        }
        if is_square(n) {
            return OptRouterMachine {
                inner: OptInner::Square(OptSquareRouter::new(n, me.index(), my_msgs, 0)),
            };
        }
        let q = isqrt(n);
        let q2 = q * q;
        let off2 = n - q2;
        let v = me.index();
        let mut m1 = Vec::new();
        let mut m2 = Vec::new();
        let mut mx = Vec::new();
        for m in my_msgs {
            let d = m.dst.index();
            if v < q2 && d < q2 {
                m1.push(m);
            } else if v >= off2 && d >= off2 {
                m2.push(RoutedMessage::new(
                    NodeId::new(v - off2),
                    NodeId::new(d - off2),
                    m.seq,
                    m.payload,
                ));
            } else {
                mx.push(m);
            }
        }
        OptRouterMachine {
            inner: OptInner::Split {
                q2,
                off2,
                i1: (v < q2).then(|| OptSquareRouter::new(q2, v, m1, 1)),
                i2: (v >= off2).then(|| OptSquareRouter::new(q2, v - off2, m2, 2)),
                cross: CrossRouter::new((0..off2).collect(), (q2..n).collect(), mx, 3),
                out1: None,
                out2: None,
                out3: None,
                call: 0,
            },
        }
    }
}

impl<P: RoutePayload> NodeMachine for OptRouterMachine<P> {
    type Msg = OGMsg<P>;
    type Output = Vec<RoutedMessage<P>>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, OGMsg<P>>) {
        match &mut self.inner {
            OptInner::Tiny { .. } => {}
            OptInner::Square(sq) => {
                let (base, outbox) = ctx.split();
                for (dst, m) in sq.activate(base) {
                    outbox.push((NodeId::new(dst), OGMsg::I1(m)));
                }
            }
            OptInner::Split {
                q2,
                off2,
                i1,
                i2,
                cross,
                ..
            } => {
                let (q2, off2) = (*q2, *off2);
                let me = ctx.me();
                let (base, outbox) = ctx.split();
                if let Some(sq) = i1 {
                    let mut vctx = base.virtualized(me, q2);
                    for (dst, m) in sq.activate(&mut vctx) {
                        outbox.push((NodeId::new(dst), OGMsg::I1(m)));
                    }
                }
                if let Some(sq) = i2 {
                    let mut vctx = base.virtualized(NodeId::new(me.index() - off2), q2);
                    for (dst, m) in sq.activate(&mut vctx) {
                        outbox.push((NodeId::new(dst + off2), OGMsg::I2(m)));
                    }
                }
                for (dst, m) in cross.activate(base) {
                    outbox.push((dst, OGMsg::Cross(m)));
                }
            }
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, OGMsg<P>>,
        inbox: &mut Inbox<OGMsg<P>>,
    ) -> Step<Self::Output> {
        match &mut self.inner {
            OptInner::Tiny {
                queues,
                delivered,
                rounds_total,
                call,
            } => {
                *call += 1;
                for (_, msg) in inbox.drain() {
                    let OGMsg::Direct(m) = msg else {
                        panic!("unexpected message in tiny router: {msg:?}");
                    };
                    delivered.push(m);
                }
                if *call <= *rounds_total {
                    for (dst, q) in queues.iter_mut().enumerate() {
                        if let Some(m) = q.pop() {
                            ctx.send(NodeId::new(dst), OGMsg::Direct(m));
                        }
                    }
                }
                if *call == *rounds_total + 1 {
                    Step::Done(std::mem::take(delivered))
                } else {
                    Step::Continue
                }
            }
            OptInner::Square(sq) => {
                let msgs: Vec<(usize, OptMsg<P>)> = inbox
                    .drain()
                    .map(|(src, msg)| match msg {
                        OGMsg::I1(m) => (src.index(), m),
                        other => panic!("unexpected message in opt square router: {other:?}"),
                    })
                    .collect();
                let (base, outbox) = ctx.split();
                let (sends, out) = sq.on_round(base, msgs);
                for (dst, m) in sends {
                    outbox.push((NodeId::new(dst), OGMsg::I1(m)));
                }
                match out {
                    Some(d) => Step::Done(d),
                    None => Step::Continue,
                }
            }
            OptInner::Split {
                q2,
                off2,
                i1,
                i2,
                cross,
                out1,
                out2,
                out3,
                call,
            } => {
                *call += 1;
                let (q2, off2) = (*q2, *off2);
                let mut inbox1 = Vec::new();
                let mut inbox2 = Vec::new();
                let mut inbox3 = Vec::new();
                for (src, msg) in inbox.drain() {
                    match msg {
                        OGMsg::I1(m) => inbox1.push((src.index(), m)),
                        OGMsg::I2(m) => inbox2.push((src.index() - off2, m)),
                        OGMsg::Cross(m) => inbox3.push((src, m)),
                        other => panic!("unexpected message in split router: {other:?}"),
                    }
                }
                let me = ctx.me();
                let (base, outbox) = ctx.split();
                if *call <= OptSquareRouter::<P>::ROUNDS {
                    if let Some(sq) = i1 {
                        let mut vctx = base.virtualized(me, q2);
                        let (sends, out) = sq.on_round(&mut vctx, inbox1);
                        for (dst, m) in sends {
                            outbox.push((NodeId::new(dst), OGMsg::I1(m)));
                        }
                        if let Some(d) = out {
                            *out1 = Some(d);
                        }
                    }
                    if let Some(sq) = i2 {
                        let mut vctx = base.virtualized(NodeId::new(me.index() - off2), q2);
                        let (sends, out) = sq.on_round(&mut vctx, inbox2);
                        for (dst, m) in sends {
                            outbox.push((NodeId::new(dst + off2), OGMsg::I2(m)));
                        }
                        if let Some(d) = out {
                            *out2 = Some(
                                d.into_iter()
                                    .map(|m| {
                                        RoutedMessage::new(
                                            NodeId::new(m.src.index() + off2),
                                            NodeId::new(m.dst.index() + off2),
                                            m.seq,
                                            m.payload,
                                        )
                                    })
                                    .collect(),
                            );
                        }
                    }
                }
                if *call <= CrossRouter::<P>::ROUNDS {
                    let (sends, out) = cross.on_round(base, inbox3);
                    for (dst, m) in sends {
                        outbox.push((dst, OGMsg::Cross(m)));
                    }
                    if let Some(d) = out {
                        *out3 = Some(d);
                    }
                }
                if *call == OptSquareRouter::<P>::ROUNDS {
                    let mut all = Vec::new();
                    all.extend(out1.take().unwrap_or_default());
                    all.extend(out2.take().unwrap_or_default());
                    all.extend(out3.take().unwrap_or_default());
                    Step::Done(all)
                } else {
                    Step::Continue
                }
            }
        }
    }
}

/// The spec for the optimized router: wider constant-factor budget (the
/// oblivious scatters trade exactness for approximate balance).
pub fn spec_for_optimized(n: usize) -> CliqueSpec {
    CliqueSpec::new(n)
        .expect("n >= 1")
        .with_budget_words(160)
        .with_max_rounds(64)
}

/// Routes `instance` with the 12-round, `O(n log n)`-work algorithm of
/// Theorem 5.4, verifying the delivery before returning.
///
/// # Errors
///
/// Propagates simulator and verification errors; see
/// [`route_deterministic`](crate::routing::route_deterministic).
pub fn route_optimized<P: RoutePayload>(
    instance: &RoutingInstance<P>,
) -> Result<RouteOutcome<P>, CoreError> {
    route_optimized_with_spec(instance, spec_for_optimized(instance.n()))
}

/// As [`route_optimized`] with a caller-provided spec.
///
/// # Errors
///
/// See [`route_optimized`].
pub fn route_optimized_with_spec<P: RoutePayload>(
    instance: &RoutingInstance<P>,
    spec: CliqueSpec,
) -> Result<RouteOutcome<P>, CoreError> {
    route_optimized_with_exec(instance, spec, Exec::OneShot)
}

/// The shared driver: one-shot and session execution differ only in the
/// [`Exec`] passed here.
///
/// # Errors
///
/// See [`route_optimized`].
pub(crate) fn route_optimized_with_exec<P: RoutePayload>(
    instance: &RoutingInstance<P>,
    spec: CliqueSpec,
    mut exec: Exec<'_>,
) -> Result<RouteOutcome<P>, CoreError> {
    let n = instance.n();
    let machines = (0..n)
        .map(|v| OptRouterMachine::new(instance, NodeId::new(v)))
        .collect();
    let report = exec.run(spec, machines)?;
    let mut delivered = report.outputs;
    for d in &mut delivered {
        crate::sortkey::sort_routed(d);
    }
    instance.verify_delivery(&delivered)?;
    Ok(RouteOutcome {
        delivered,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(n: usize, demand: impl Fn(usize, usize) -> u32) -> cc_sim::Metrics {
        let instance = RoutingInstance::from_demands(n, demand).unwrap();
        route_optimized(&instance).unwrap().metrics
    }

    #[test]
    fn square_full_load_in_12_rounds() {
        let m = check(16, |_, _| 1);
        assert_eq!(m.comm_rounds(), 12);
    }

    #[test]
    fn square_cyclic_worst_case() {
        let n = 16;
        let m = check(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 });
        assert_eq!(m.comm_rounds(), 12);
    }

    #[test]
    fn square_block_skew() {
        let m = check(25, |i, j| u32::from(i / 5 == j / 5));
        assert!(m.comm_rounds() <= 12);
    }

    #[test]
    fn non_square_sizes() {
        for n in [5, 6, 8, 10, 12, 15, 20] {
            let m = check(n, |i, j| u32::from((i * 7 + j) % 3 == 0));
            assert!(m.comm_rounds() <= 12, "n={n}: {} rounds", m.comm_rounds());
        }
    }

    #[test]
    fn tiny_sizes() {
        for n in [1, 2, 3] {
            let m = check(n, |_, _| 1);
            assert!(m.comm_rounds() <= 12, "n={n}");
        }
    }

    #[test]
    fn work_is_quasilinear_compared_to_basic() {
        // The optimized variant's per-node work must undercut the basic
        // algorithm's markedly once n is nontrivial.
        let n = 64;
        let instance = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        let opt = route_optimized(&instance).unwrap().metrics;
        let basic = crate::routing::route_deterministic(&instance)
            .unwrap()
            .metrics;
        assert!(
            opt.max_node_steps() * 2 < basic.max_node_steps(),
            "optimized {} vs basic {}",
            opt.max_node_steps(),
            basic.max_node_steps()
        );
    }
}
