//! Theorem 3.7 for arbitrary `n`: route in 16 rounds even when `√n` is
//! not an integer.
//!
//! With `q = ⌊√n⌋`, the node set is covered by `V1 = {0, …, q²−1}` and
//! `V2 = {n−q², …, n−1}` (which overlap in the middle as soon as
//! `2q² > n`, true for every `n ≥ 4` except perfect squares where the
//! cover is trivial). Messages within `V1` run Algorithm 1 on a `q²`-node
//! instance; messages within `V2` (and not within `V1`) run a second,
//! id-shifted instance; the remaining *cross* messages — between
//! `A = V1\V2` and `B = V2\V1`, at most `2q` nodes per side — use the
//! paper's 6-round side procedure: spread over all `n` relays, regroup
//! into the destination side, then finish with Corollary 3.4. All three
//! parts run concurrently; message size grows by a constant factor only.
//!
//! `n ≤ 3` (where `2q² < n` can fail) is handled by direct scheduling —
//! at most `n ≤ 3` rounds, trivially within the 16-round bound.

use crate::error::CoreError;
use crate::exec::Exec;
use crate::routing::instance::{RoutedMessage, RoutingInstance};
use crate::routing::square::{RoutePayload, SqMsg, SquareRouter};
use cc_primitives::{Driver, SubsetExchange, SxMsg};
use cc_sim::util::{is_square, isqrt, word_bits};
use cc_sim::{CliqueSpec, Ctx, Inbox, Metrics, NodeId, NodeMachine, Payload, Step};

/// Messages of the V1/V2/V3 cross procedure.
#[derive(Clone, Debug)]
pub enum CxMsg<P = u64> {
    /// Phase 1: spread over relays.
    Phase1(RoutedMessage<P>),
    /// Phase 2: regroup into the destination side.
    Phase2(RoutedMessage<P>),
    /// Final exchange within side `A`.
    SxA(SxMsg<RoutedMessage<P>>),
    /// Final exchange within side `B`.
    SxB(SxMsg<RoutedMessage<P>>),
}

impl<P: Payload> Payload for CxMsg<P> {
    fn size_bits(&self, n: usize) -> u64 {
        2 + match self {
            CxMsg::Phase1(m) | CxMsg::Phase2(m) => m.size_bits(n),
            CxMsg::SxA(m) | CxMsg::SxB(m) => m.size_bits(n),
        }
    }
}

/// Messages of the general router.
#[derive(Clone, Debug)]
pub enum GMsg<P = u64> {
    /// Traffic of the first (or only) square instance.
    I1(SqMsg<P>),
    /// Traffic of the second, id-shifted square instance.
    I2(SqMsg<P>),
    /// Cross-procedure traffic.
    Cross(CxMsg<P>),
    /// Tiny-`n` direct delivery.
    Direct(RoutedMessage<P>),
}

impl<P: Payload> Payload for GMsg<P> {
    fn size_bits(&self, n: usize) -> u64 {
        2 + match self {
            GMsg::I1(m) | GMsg::I2(m) => m.size_bits(n),
            GMsg::Cross(m) => m.size_bits(n),
            GMsg::Direct(m) => m.size_bits(n),
        }
    }
}

/// The 6-round cross procedure for messages between sides `A` and `B`.
pub(crate) struct CrossRouter<P = u64> {
    a_side: Vec<usize>,
    b_side: Vec<usize>,
    cross_msgs: Vec<RoutedMessage<P>>,
    tag: u64,
    call: u32,
    sx_a: Option<SubsetExchange<RoutedMessage<P>>>,
    sx_b: Option<SubsetExchange<RoutedMessage<P>>>,
    delivered: Vec<RoutedMessage<P>>,
}

impl<P: RoutePayload> CrossRouter<P> {
    pub(crate) const ROUNDS: u32 = 6;

    pub(crate) fn new(
        a_side: Vec<usize>,
        b_side: Vec<usize>,
        cross_msgs: Vec<RoutedMessage<P>>,
        tag: u64,
    ) -> Self {
        CrossRouter {
            a_side,
            b_side,
            cross_msgs,
            tag,
            call: 0,
            sx_a: None,
            sx_b: None,
            delivered: Vec::new(),
        }
    }

    fn side_of(&self, v: usize) -> Option<(bool, usize)> {
        if let Ok(i) = self.a_side.binary_search(&v) {
            return Some((true, i));
        }
        if let Ok(i) = self.b_side.binary_search(&v) {
            return Some((false, i));
        }
        None
    }

    pub(crate) fn activate(&mut self, ctx: &mut cc_sim::BaseCtx<'_>) -> Vec<(NodeId, CxMsg<P>)> {
        // Phase 1: the j-th cross message goes to relay node j.
        let mut msgs = std::mem::take(&mut self.cross_msgs);
        crate::sortkey::sort_routed(&mut msgs);
        assert!(msgs.len() <= ctx.n(), "at most n cross messages per node");
        ctx.charge_work(msgs.len() as u64);
        msgs.into_iter()
            .enumerate()
            .map(|(j, m)| (NodeId::new(j), CxMsg::Phase1(m)))
            .collect()
    }

    pub(crate) fn on_round(
        &mut self,
        ctx: &mut cc_sim::BaseCtx<'_>,
        inbox: Vec<(NodeId, CxMsg<P>)>,
    ) -> (Vec<(NodeId, CxMsg<P>)>, Option<Vec<RoutedMessage<P>>>) {
        self.call += 1;
        match self.call {
            1 => {
                // Phase 2: forward each received message toward its
                // destination side, the j-th (canonically) to that side's
                // j-th member.
                let mut to_a = Vec::new();
                let mut to_b = Vec::new();
                for (_, msg) in inbox {
                    let CxMsg::Phase1(m) = msg else {
                        panic!("unexpected message in cross phase 1: {msg:?}");
                    };
                    match self.side_of(m.dst.index()) {
                        Some((true, _)) => to_a.push(m),
                        Some((false, _)) => to_b.push(m),
                        None => panic!("cross message destined outside A ∪ B"),
                    }
                }
                crate::sortkey::sort_routed(&mut to_a);
                crate::sortkey::sort_routed(&mut to_b);
                assert!(to_a.len() <= self.a_side.len(), "phase-2 A overflow");
                assert!(to_b.len() <= self.b_side.len(), "phase-2 B overflow");
                ctx.charge_work((to_a.len() + to_b.len()) as u64);
                let mut sends = Vec::new();
                for (j, m) in to_a.into_iter().enumerate() {
                    sends.push((NodeId::new(self.a_side[j]), CxMsg::Phase2(m)));
                }
                for (j, m) in to_b.into_iter().enumerate() {
                    sends.push((NodeId::new(self.b_side[j]), CxMsg::Phase2(m)));
                }
                (sends, None)
            }
            2 => {
                // Collect phase-2 arrivals; start Cor 3.4 within each side.
                let me = ctx.me().index();
                let my_side = self.side_of(me);
                let mut sends = Vec::new();
                let group_a = cc_primitives::NodeGroup::from_members(
                    self.a_side.iter().map(|&v| NodeId::new(v)).collect(),
                );
                let group_b = cc_primitives::NodeGroup::from_members(
                    self.b_side.iter().map(|&v| NodeId::new(v)).collect(),
                );
                let mut held = Vec::new();
                for (_, msg) in inbox {
                    let CxMsg::Phase2(m) = msg else {
                        panic!("unexpected message in cross phase 2: {msg:?}");
                    };
                    held.push(m);
                }
                let mut sx_a = match my_side {
                    Some((true, local)) => {
                        let mut outgoing = vec![Vec::new(); group_a.len()];
                        for m in held
                            .iter()
                            .filter(|m| self.side_of(m.dst.index()).map(|(a, _)| a) == Some(true))
                        {
                            let (_, j) = self.side_of(m.dst.index()).expect("checked");
                            outgoing[j].push(m.clone());
                        }
                        SubsetExchange::member(
                            group_a,
                            local,
                            outgoing,
                            cc_sim::CommonScope::new("route.cross.sxa", self.tag),
                        )
                    }
                    _ => SubsetExchange::relay_only(),
                };
                let mut sx_b = match my_side {
                    Some((false, local)) => {
                        let mut outgoing = vec![Vec::new(); group_b.len()];
                        for m in held
                            .iter()
                            .filter(|m| self.side_of(m.dst.index()).map(|(a, _)| a) == Some(false))
                        {
                            let (_, j) = self.side_of(m.dst.index()).expect("checked");
                            outgoing[j].push(m.clone());
                        }
                        SubsetExchange::member(
                            group_b,
                            local,
                            outgoing,
                            cc_sim::CommonScope::new("route.cross.sxb", self.tag),
                        )
                    }
                    _ => SubsetExchange::relay_only(),
                };
                sends.extend(
                    sx_a.activate(ctx)
                        .into_iter()
                        .map(|(d, m)| (d, CxMsg::SxA(m))),
                );
                sends.extend(
                    sx_b.activate(ctx)
                        .into_iter()
                        .map(|(d, m)| (d, CxMsg::SxB(m))),
                );
                self.sx_a = Some(sx_a);
                self.sx_b = Some(sx_b);
                (sends, None)
            }
            3..=6 => {
                let mut a_msgs = Vec::new();
                let mut b_msgs = Vec::new();
                for (src, msg) in inbox {
                    match msg {
                        CxMsg::SxA(m) => a_msgs.push((src, m)),
                        CxMsg::SxB(m) => b_msgs.push((src, m)),
                        other => panic!("unexpected message in cross exchange: {other:?}"),
                    }
                }
                let mut sends = Vec::new();
                let step_a = self
                    .sx_a
                    .as_mut()
                    .expect("sx_a active")
                    .on_round(ctx, a_msgs);
                sends.extend(step_a.sends.into_iter().map(|(d, m)| (d, CxMsg::SxA(m))));
                let step_b = self
                    .sx_b
                    .as_mut()
                    .expect("sx_b active")
                    .on_round(ctx, b_msgs);
                sends.extend(step_b.sends.into_iter().map(|(d, m)| (d, CxMsg::SxB(m))));
                if let Some(out) = step_a.output {
                    self.delivered.extend(out);
                }
                if let Some(out) = step_b.output {
                    self.delivered.extend(out);
                }
                if self.call == Self::ROUNDS {
                    (sends, Some(std::mem::take(&mut self.delivered)))
                } else {
                    (sends, None)
                }
            }
            _ => panic!("CrossRouter stepped past completion"),
        }
    }
}

enum Inner<P> {
    /// `n ≤ 3`: direct scheduling, one message per edge per round.
    Tiny {
        queues: Vec<Vec<RoutedMessage<P>>>,
        delivered: Vec<RoutedMessage<P>>,
        rounds_total: u32,
        call: u32,
    },
    /// Perfect-square `n`: a single Algorithm 1 instance.
    Square(SquareRouter<P>),
    /// General `n`: two overlapping square instances plus the cross
    /// procedure.
    Split {
        q2: usize,
        off2: usize,
        i1: Option<SquareRouter<P>>,
        i2: Option<SquareRouter<P>>,
        cross: CrossRouter<P>,
        out1: Option<Vec<RoutedMessage<P>>>,
        out2: Option<Vec<RoutedMessage<P>>>,
        out3: Option<Vec<RoutedMessage<P>>>,
        call: u32,
    },
}

/// Per-node machine of the deterministic 16-round router (Theorem 3.7).
pub struct RouterMachine<P = u64> {
    inner: Inner<P>,
}

impl<P: RoutePayload> RouterMachine<P> {
    /// Builds the machine for node `me` of `instance`.
    pub fn new(instance: &RoutingInstance<P>, me: NodeId) -> Self {
        Self::from_messages(instance.n(), me, instance.sends(me.index()).to_vec(), 0)
    }

    /// Builds the machine for node `me` from its raw send list — used when
    /// the instance exists only distributed across nodes (e.g. Algorithm
    /// 4's Step 6). `tag` disambiguates concurrent or sequential embedded
    /// router instances in the common-knowledge cache; standalone runs use
    /// 0. The caller is responsible for the load bounds the validated
    /// constructor would otherwise check.
    pub fn from_messages(n: usize, me: NodeId, my_msgs: Vec<RoutedMessage<P>>, tag: u64) -> Self {
        if n <= 3 {
            // Round-robin direct schedule: per destination, one message
            // per round; at most n messages per pair, so n rounds.
            let mut queues: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); n];
            for m in my_msgs {
                queues[m.dst.index()].push(m);
            }
            for q in &mut queues {
                crate::sortkey::sort_routed(q);
            }
            return RouterMachine {
                inner: Inner::Tiny {
                    queues,
                    delivered: Vec::new(),
                    rounds_total: n as u32,
                    call: 0,
                },
            };
        }
        if is_square(n) {
            return RouterMachine {
                inner: Inner::Square(SquareRouter::new(n, me.index(), my_msgs, tag)),
            };
        }
        let q = isqrt(n);
        let q2 = q * q;
        let off2 = n - q2;
        debug_assert!(2 * q2 >= n, "cover property holds for n >= 4");
        let v = me.index();
        let in_v1 = v < q2;
        let in_v2 = v >= off2;
        let mut m1 = Vec::new();
        let mut m2 = Vec::new();
        let mut mx = Vec::new();
        for m in my_msgs {
            let d = m.dst.index();
            if v < q2 && d < q2 {
                m1.push(m);
            } else if v >= off2 && d >= off2 {
                // Translate into I2's virtual id space.
                m2.push(RoutedMessage::new(
                    NodeId::new(v - off2),
                    NodeId::new(d - off2),
                    m.seq,
                    m.payload,
                ));
            } else {
                mx.push(m);
            }
        }
        let a_side: Vec<usize> = (0..off2).collect(); // V1 \ V2
        let b_side: Vec<usize> = (q2..n).collect(); // V2 \ V1
        RouterMachine {
            inner: Inner::Split {
                q2,
                off2,
                i1: in_v1.then(|| SquareRouter::new(q2, v, m1, cc_sim::hash::combine(tag, 1))),
                i2: in_v2
                    .then(|| SquareRouter::new(q2, v - off2, m2, cc_sim::hash::combine(tag, 2))),
                cross: CrossRouter::new(a_side, b_side, mx, tag),
                out1: None,
                out2: None,
                out3: None,
                call: 0,
            },
        }
    }
}

impl<P: RoutePayload> NodeMachine for RouterMachine<P> {
    type Msg = GMsg<P>;
    type Output = Vec<RoutedMessage<P>>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GMsg<P>>) {
        match &mut self.inner {
            Inner::Tiny { .. } => {}
            Inner::Square(sq) => {
                let (base, outbox) = ctx.split();
                for (dst, m) in sq.activate(base) {
                    outbox.push((NodeId::new(dst), GMsg::I1(m)));
                }
            }
            Inner::Split {
                q2,
                off2,
                i1,
                i2,
                cross,
                ..
            } => {
                let q2 = *q2;
                let off2 = *off2;
                let me = ctx.me();
                let (base, outbox) = ctx.split();
                if let Some(sq) = i1 {
                    let mut vctx = base.virtualized(me, q2);
                    for (dst, m) in sq.activate(&mut vctx) {
                        outbox.push((NodeId::new(dst), GMsg::I1(m)));
                    }
                }
                if let Some(sq) = i2 {
                    let mut vctx = base.virtualized(NodeId::new(me.index() - off2), q2);
                    for (dst, m) in sq.activate(&mut vctx) {
                        outbox.push((NodeId::new(dst + off2), GMsg::I2(m)));
                    }
                }
                for (dst, m) in cross.activate(base) {
                    outbox.push((dst, GMsg::Cross(m)));
                }
            }
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, GMsg<P>>,
        inbox: &mut Inbox<GMsg<P>>,
    ) -> Step<Self::Output> {
        match &mut self.inner {
            Inner::Tiny {
                queues,
                delivered,
                rounds_total,
                call,
            } => {
                *call += 1;
                for (_, msg) in inbox.drain() {
                    let GMsg::Direct(m) = msg else {
                        panic!("unexpected message in tiny router: {msg:?}");
                    };
                    delivered.push(m);
                }
                if *call <= *rounds_total {
                    for (dst, q) in queues.iter_mut().enumerate() {
                        if let Some(m) = q.pop() {
                            ctx.send(NodeId::new(dst), GMsg::Direct(m));
                        }
                    }
                }
                // One extra trailing round collects the final arrivals.
                if *call == *rounds_total + 1 {
                    Step::Done(std::mem::take(delivered))
                } else {
                    Step::Continue
                }
            }
            Inner::Square(sq) => {
                let msgs: Vec<(usize, SqMsg<P>)> = inbox
                    .drain()
                    .map(|(src, msg)| match msg {
                        GMsg::I1(m) => (src.index(), m),
                        other => panic!("unexpected message in square router: {other:?}"),
                    })
                    .collect();
                let (base, outbox) = ctx.split();
                let (sends, out) = sq.on_round(base, msgs);
                for (dst, m) in sends {
                    outbox.push((NodeId::new(dst), GMsg::I1(m)));
                }
                match out {
                    Some(delivered) => Step::Done(delivered),
                    None => Step::Continue,
                }
            }
            Inner::Split {
                q2,
                off2,
                i1,
                i2,
                cross,
                out1,
                out2,
                out3,
                call,
            } => {
                *call += 1;
                let q2 = *q2;
                let off2 = *off2;
                let mut inbox1 = Vec::new();
                let mut inbox2 = Vec::new();
                let mut inbox3 = Vec::new();
                for (src, msg) in inbox.drain() {
                    match msg {
                        GMsg::I1(m) => inbox1.push((src.index(), m)),
                        GMsg::I2(m) => inbox2.push((src.index() - off2, m)),
                        GMsg::Cross(m) => inbox3.push((src, m)),
                        other => panic!("unexpected message in split router: {other:?}"),
                    }
                }
                let me = ctx.me();
                let (base, outbox) = ctx.split();
                if *call <= SquareRouter::<P>::ROUNDS {
                    if let Some(sq) = i1 {
                        let mut vctx = base.virtualized(me, q2);
                        let (sends, out) = sq.on_round(&mut vctx, inbox1);
                        for (dst, m) in sends {
                            outbox.push((NodeId::new(dst), GMsg::I1(m)));
                        }
                        if let Some(d) = out {
                            *out1 = Some(d);
                        }
                    } else {
                        debug_assert!(inbox1.is_empty(), "I1 traffic outside V1");
                    }
                    if let Some(sq) = i2 {
                        let mut vctx = base.virtualized(NodeId::new(me.index() - off2), q2);
                        let (sends, out) = sq.on_round(&mut vctx, inbox2);
                        for (dst, m) in sends {
                            outbox.push((NodeId::new(dst + off2), GMsg::I2(m)));
                        }
                        if let Some(d) = out {
                            // Translate deliveries back to global ids.
                            *out2 = Some(
                                d.into_iter()
                                    .map(|m| {
                                        RoutedMessage::new(
                                            NodeId::new(m.src.index() + off2),
                                            NodeId::new(m.dst.index() + off2),
                                            m.seq,
                                            m.payload,
                                        )
                                    })
                                    .collect(),
                            );
                        }
                    } else {
                        debug_assert!(inbox2.is_empty(), "I2 traffic outside V2");
                    }
                }
                if *call <= CrossRouter::<P>::ROUNDS {
                    let (sends, out) = cross.on_round(base, inbox3);
                    for (dst, m) in sends {
                        outbox.push((dst, GMsg::Cross(m)));
                    }
                    if let Some(d) = out {
                        *out3 = Some(d);
                    }
                } else {
                    debug_assert!(inbox3.is_empty(), "late cross traffic");
                }
                if *call == SquareRouter::<P>::ROUNDS {
                    let mut all = Vec::new();
                    all.extend(out1.take().unwrap_or_default());
                    all.extend(out2.take().unwrap_or_default());
                    all.extend(out3.take().unwrap_or_default());
                    Step::Done(all)
                } else {
                    Step::Continue
                }
            }
        }
    }
}

/// The outcome of a routing run: per-node deliveries plus measurements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteOutcome<P = u64> {
    /// `delivered[k]` is the multiset `R_k`, canonically sorted.
    pub delivered: Vec<Vec<RoutedMessage<P>>>,
    /// Rounds, messages, bits, work.
    pub metrics: Metrics,
}

/// The simulator spec the deterministic router needs: the per-edge budget
/// covers the worst-case constant-factor message growth of the parallel
/// V1/V2/V3 composition (three concurrent sub-protocols with doubled
/// relay legs — a generous fixed constant, still `O(log n)` bits).
pub fn spec_for_routing(n: usize) -> CliqueSpec {
    CliqueSpec::new(n)
        .expect("n >= 1")
        .with_budget_words(64)
        .with_max_rounds(64)
}

/// Routes `instance` with the deterministic 16-round algorithm
/// (Theorem 3.7), verifying the delivery before returning.
///
/// # Errors
///
/// Propagates simulator errors (budget/liveness violations) and
/// verification failures — none of which occur for valid instances; they
/// indicate implementation bugs and are surfaced rather than masked.
pub fn route_deterministic<P: RoutePayload>(
    instance: &RoutingInstance<P>,
) -> Result<RouteOutcome<P>, CoreError> {
    route_with_spec(instance, spec_for_routing(instance.n()))
}

/// As [`route_deterministic`] with a caller-provided spec (used by the
/// benchmark harness to tighten budgets or record histograms).
///
/// # Errors
///
/// See [`route_deterministic`].
pub fn route_with_spec<P: RoutePayload>(
    instance: &RoutingInstance<P>,
    spec: CliqueSpec,
) -> Result<RouteOutcome<P>, CoreError> {
    route_with_exec(instance, spec, Exec::OneShot)
}

/// The driver behind both [`route_with_spec`] (one-shot) and
/// [`CliqueService::route`](crate::CliqueService::route) (persistent
/// session): builds the per-node machines, runs them on `exec`, and
/// verifies the delivery.
///
/// # Errors
///
/// See [`route_deterministic`].
pub(crate) fn route_with_exec<P: RoutePayload>(
    instance: &RoutingInstance<P>,
    spec: CliqueSpec,
    mut exec: Exec<'_>,
) -> Result<RouteOutcome<P>, CoreError> {
    let n = instance.n();
    let machines = (0..n)
        .map(|v| RouterMachine::new(instance, NodeId::new(v)))
        .collect();
    let report = exec.run(spec, machines)?;
    let mut delivered = report.outputs;
    for d in &mut delivered {
        crate::sortkey::sort_routed(d);
    }
    instance.verify_delivery(&delivered)?;
    Ok(RouteOutcome {
        delivered,
        metrics: report.metrics,
    })
}

/// Upper bound on the bits any single protocol message occupies, used by
/// budget sanity tests.
pub fn max_message_bits(n: usize) -> u64 {
    // GMsg tag + SqMsg tag + KxMsg framing + Inter payload.
    3 + 4 + 1 + word_bits(n) + 6 * word_bits(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_routing(n: usize, demand: impl Fn(usize, usize) -> u32) -> Metrics {
        let instance = RoutingInstance::from_demands(n, demand).unwrap();
        let outcome = route_deterministic(&instance).unwrap();
        outcome.metrics
    }

    #[test]
    fn square_full_permutation_load() {
        // n = 16: node i sends one message to every node (n per node).
        let m = check_routing(16, |_, _| 1);
        assert_eq!(m.comm_rounds(), 16);
    }

    #[test]
    fn square_cyclic_worst_case() {
        // All of node i's messages target node i+1 — the workload that
        // forces Θ(n) rounds for direct routing.
        let n = 16;
        let m = check_routing(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 });
        assert_eq!(m.comm_rounds(), 16);
    }

    #[test]
    fn square_partial_load() {
        let m = check_routing(16, |i, j| ((i * 31 + j * 17) % 3 == 0) as u32);
        assert!(m.comm_rounds() <= 16);
    }

    #[test]
    fn square_empty_instance() {
        let m = check_routing(16, |_, _| 0);
        assert!(m.comm_rounds() <= 16);
    }

    #[test]
    fn non_square_sizes() {
        for n in [5, 6, 7, 8, 10, 12, 15, 17, 20] {
            let m = check_routing(n, |i, j| u32::from((i + j) % 3 == 0));
            assert!(m.comm_rounds() <= 16, "n={n}: {} rounds", m.comm_rounds());
        }
    }

    #[test]
    fn non_square_full_load() {
        // Every node sends n messages: i -> (i+k) mod n gets one each.
        for n in [5, 8, 12] {
            let m = check_routing(n, |_, _| 1);
            assert!(m.comm_rounds() <= 16, "n={n}: {} rounds", m.comm_rounds());
        }
    }

    #[test]
    fn tiny_cliques() {
        for n in [1, 2, 3] {
            let m = check_routing(n, |_, _| 1);
            assert!(m.comm_rounds() <= 16, "n={n}");
        }
        // Full skew on n = 3: all three messages from each node to one
        // destination.
        let m = check_routing(3, |i, j| if (i + 1) % 3 == j { 3 } else { 0 });
        assert!(m.comm_rounds() <= 16);
    }

    #[test]
    fn self_messages_are_delivered() {
        let m = check_routing(9, |i, j| u32::from(i == j) * 3);
        assert!(m.comm_rounds() <= 16);
    }

    #[test]
    fn message_sizes_stay_logarithmic() {
        let instance = RoutingInstance::from_demands(25, |_, _| 1).unwrap();
        let outcome = route_deterministic(&instance).unwrap();
        let budget = spec_for_routing(25).bits_per_edge();
        assert!(outcome.metrics.max_edge_bits() <= budget);
    }
}
