//! The Information Distribution Task (Problem 3.1) and its deterministic
//! constant-round solutions.
//!
//! * [`RoutingInstance`] / [`RoutedMessage`] — the problem statement:
//!   every node is source and destination of up to `n` messages of
//!   `O(log n)` bits, only sources initially know destinations/contents.
//! * [`route_deterministic`] — Theorem 3.7: **16 rounds**, any `n`
//!   (perfect squares run Algorithm 1 directly; other `n` use the
//!   V1/V2/V3 parallel decomposition).
//! * [`route_optimized`] — Theorem 5.4: **12 rounds** with `O(n log n)`
//!   local computation and memory per node (§5's round-robin scatter and
//!   message-grouping devices).
//! * [`route_large_messages`] — §6.1: messages of `L ∈ ω(log n)` bits are
//!   fragmented into `⌈L / word⌉` instances.

mod general;
mod instance;
mod large;
mod optimized;
mod square;

pub(crate) use general::route_with_exec;
pub use general::{
    max_message_bits, route_deterministic, route_with_spec, spec_for_routing, CxMsg, GMsg,
    RouteOutcome, RouterMachine,
};
pub use instance::{RoutedMessage, RoutingInstance};
pub use large::{route_large_messages, LargeMessage, LargeOutcome};
pub(crate) use optimized::route_optimized_with_exec;
pub use optimized::{
    route_optimized, route_optimized_with_spec, spec_for_optimized, OGMsg, OptMsg, OptRouterMachine,
};
pub use square::{Inter, RoutePayload, SqMsg};
