//! Problem 3.1 — the Information Distribution Task.

use crate::error::CoreError;
use cc_sim::util::word_bits;
use cc_sim::{NodeId, Payload};

/// One routable message: source, destination, a per-(source, destination)
/// sequence number making messages globally distinguishable (the paper's
/// lexicographic `(i, d(m), j)` identity), and an `O(log n)`-bit payload.
///
/// The payload type defaults to a single machine word; Algorithm 4 routes
/// bundles of sort keys by instantiating `P` with a key batch.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoutedMessage<P = u64> {
    /// Source node (initially the only holder).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Sequence number among the source's messages to this destination.
    pub seq: u32,
    /// Application payload.
    pub payload: P,
}

impl<P: Payload> Payload for RoutedMessage<P> {
    fn size_bits(&self, n: usize) -> u64 {
        // src + dst + seq + the payload.
        3 * word_bits(n) + self.payload.size_bits(n)
    }
}

impl<P> RoutedMessage<P> {
    /// Builds a message.
    pub fn new(src: NodeId, dst: NodeId, seq: u32, payload: P) -> Self {
        RoutedMessage {
            src,
            dst,
            seq,
            payload,
        }
    }

    /// The canonical sort key `(src, dst, seq)` of the paper's global
    /// lexicographic order.
    pub fn key(&self) -> (NodeId, NodeId, u32) {
        (self.src, self.dst, self.seq)
    }
}

/// An instance of the Information Distribution Task: for each node, the
/// messages it must send.
///
/// Validation enforces the paper's (relaxed) bounds: every node sends at
/// most `n` messages and receives at most `n` messages, and message
/// identities `(src, dst, seq)` are unique. (The paper's "exactly n"
/// normalization is a presentation device; the algorithms here handle
/// "at most n" directly, which the paper notes is trivial.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingInstance<P = u64> {
    n: usize,
    sends: Vec<Vec<RoutedMessage<P>>>,
}

impl<P: Clone + std::fmt::Debug + PartialEq + Ord> RoutingInstance<P> {
    /// Builds an instance from per-source message lists.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] if shapes, identities or the
    /// per-node send/receive bounds are violated.
    pub fn new(n: usize, sends: Vec<Vec<RoutedMessage<P>>>) -> Result<Self, CoreError> {
        Self::with_max_load(n, sends, n)
    }

    /// As [`RoutingInstance::new`] but allowing per-node send/receive
    /// loads up to `max_load ≥ n` messages. The routers handle such
    /// overloaded instances correctly at a proportional constant-factor
    /// increase in per-edge traffic; Algorithm 4's Step 6 uses a `2n`-load
    /// instance of bundled keys.
    ///
    /// # Errors
    ///
    /// Same validation as [`RoutingInstance::new`], against `max_load`.
    pub fn with_max_load(
        n: usize,
        sends: Vec<Vec<RoutedMessage<P>>>,
        max_load: usize,
    ) -> Result<Self, CoreError> {
        if sends.len() != n {
            return Err(CoreError::invalid(format!(
                "expected {n} send lists, got {}",
                sends.len()
            )));
        }
        let mut receive_counts = vec![0usize; n];
        for (i, list) in sends.iter().enumerate() {
            if list.len() > max_load {
                return Err(CoreError::invalid(format!(
                    "node {i} sends {} messages, more than the load cap {max_load}",
                    list.len()
                )));
            }
            let mut seen = std::collections::HashSet::with_capacity(list.len());
            for m in list {
                if m.src.index() != i {
                    return Err(CoreError::invalid(format!(
                        "message {m:?} in node {i}'s send list has src {}",
                        m.src
                    )));
                }
                if m.dst.index() >= n {
                    return Err(CoreError::invalid(format!(
                        "message {m:?} addresses node {} outside the {n}-clique",
                        m.dst
                    )));
                }
                if !seen.insert((m.dst, m.seq)) {
                    return Err(CoreError::invalid(format!(
                        "duplicate message identity (src {}, dst {}, seq {})",
                        m.src, m.dst, m.seq
                    )));
                }
                receive_counts[m.dst.index()] += 1;
            }
        }
        if let Some((k, &c)) = receive_counts
            .iter()
            .enumerate()
            .find(|&(_, &c)| c > max_load)
        {
            return Err(CoreError::invalid(format!(
                "node {k} receives {c} messages, more than the load cap {max_load}"
            )));
        }
        Ok(RoutingInstance { n, sends })
    }

    /// Clique size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Messages node `i` must send.
    pub fn sends(&self, i: usize) -> &[RoutedMessage<P>] {
        &self.sends[i]
    }

    /// All send lists.
    pub fn all_sends(&self) -> &[Vec<RoutedMessage<P>>] {
        &self.sends
    }

    /// Total number of messages in the instance.
    pub fn total_messages(&self) -> usize {
        self.sends.iter().map(Vec::len).sum()
    }

    /// The multiset `R_k` each node must end up with, sorted canonically —
    /// the ground truth for verification.
    pub fn expected_receives(&self) -> Vec<Vec<RoutedMessage<P>>> {
        let mut recv: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); self.n];
        for list in &self.sends {
            for m in list {
                recv[m.dst.index()].push(m.clone());
            }
        }
        for r in &mut recv {
            r.sort_unstable_by_key(|a| a.key());
        }
        recv
    }

    /// Verifies that `delivered[k]` equals `R_k` as a multiset for every
    /// node `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VerificationFailed`] naming the first node
    /// whose delivery deviates.
    pub fn verify_delivery(&self, delivered: &[Vec<RoutedMessage<P>>]) -> Result<(), CoreError> {
        if delivered.len() != self.n {
            return Err(CoreError::VerificationFailed {
                reason: format!(
                    "expected {} delivery lists, got {}",
                    self.n,
                    delivered.len()
                ),
            });
        }
        let expected = self.expected_receives();
        for k in 0..self.n {
            let mut got = delivered[k].clone();
            got.sort_unstable_by_key(|a| a.key());
            if got != expected[k] {
                return Err(CoreError::VerificationFailed {
                    reason: format!(
                        "node {k}: got {} messages, expected {}",
                        got.len(),
                        expected[k].len(),
                    ),
                });
            }
        }
        Ok(())
    }
}

impl RoutingInstance {
    /// Builds an instance from a demand function: `demand(i, j)` messages
    /// from `i` to `j`, with payloads derived deterministically.
    ///
    /// # Errors
    ///
    /// Same validation as [`RoutingInstance::new`].
    pub fn from_demands(n: usize, demand: impl Fn(usize, usize) -> u32) -> Result<Self, CoreError> {
        let sends = (0..n)
            .map(|i| {
                let mut list = Vec::new();
                for j in 0..n {
                    for k in 0..demand(i, j) {
                        list.push(RoutedMessage::new(
                            NodeId::new(i),
                            NodeId::new(j),
                            k,
                            (i as u64) << 32 | (j as u64) << 16 | u64::from(k),
                        ));
                    }
                }
                list
            })
            .collect();
        Self::new(n, sends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_demands_builds_valid_instance() {
        let inst = RoutingInstance::from_demands(4, |_, _| 1).unwrap();
        assert_eq!(inst.total_messages(), 16);
        assert_eq!(inst.sends(2).len(), 4);
        assert!(inst.sends(2).iter().all(|m| m.src == NodeId::new(2)));
    }

    #[test]
    fn rejects_overfull_sender() {
        let err = RoutingInstance::from_demands(4, |i, _| if i == 0 { 2 } else { 0 });
        assert!(err.is_err());
    }

    #[test]
    fn rejects_overfull_receiver() {
        let err = RoutingInstance::from_demands(4, |_, j| if j == 0 { 2 } else { 0 });
        assert!(err.is_err());
    }

    #[test]
    fn rejects_wrong_src() {
        let m = RoutedMessage::new(NodeId::new(1), NodeId::new(0), 0, 0u64);
        let err = RoutingInstance::new(2, vec![vec![m], vec![]]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_duplicate_identity() {
        let m = RoutedMessage::new(NodeId::new(0), NodeId::new(1), 0, 0u64);
        let err = RoutingInstance::new(2, vec![vec![m.clone(), m], vec![]]);
        assert!(err.is_err());
    }

    #[test]
    fn verify_delivery_checks_multisets() {
        let inst = RoutingInstance::from_demands(3, |i, j| u32::from(i != j)).unwrap();
        let expected = inst.expected_receives();
        assert!(inst.verify_delivery(&expected).is_ok());
        let mut wrong = expected.clone();
        wrong[0].pop();
        assert!(inst.verify_delivery(&wrong).is_err());
    }

    #[test]
    fn cyclic_full_load_is_valid() {
        // Node i sends all n messages to i+1: the paper's worst case for
        // direct routing.
        let n = 8;
        let inst =
            RoutingInstance::from_demands(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 })
                .unwrap();
        assert_eq!(inst.total_messages(), n * n);
    }
}
