//! The single executor path behind every protocol entry point.
//!
//! Each protocol module used to hand-roll its own `spec → machines → run`
//! plumbing against a fresh [`Simulator`]; this module is the one place
//! that decision now lives. A driver function takes an [`Exec`] and calls
//! [`Exec::run`]: the stateless facade passes [`Exec::OneShot`], while
//! [`CliqueService`](crate::CliqueService) passes its persistent
//! [`CliqueSession`] so consecutive queries reuse worker threads and
//! message arenas. Both arms are observably identical — the session's
//! contract is bit-identical [`RunReport`]s — so protocol code never
//! needs to know which substrate it is running on.

use cc_sim::{CliqueSession, CliqueSpec, NodeMachine, RunReport, SimError, Simulator};

/// Which simulation substrate a protocol run executes on.
pub(crate) enum Exec<'s> {
    /// A fresh [`Simulator`] per run: threads and arenas live for one run.
    OneShot,
    /// A caller-owned persistent session: threads and arenas are reused
    /// across runs (see [`CliqueSession`]).
    Session(&'s mut CliqueSession),
}

impl Exec<'_> {
    /// Runs `machines` under `spec` on the selected substrate.
    ///
    /// The `'static` bounds come from [`CliqueSession::run`] (session
    /// workers outlive any single run); every protocol machine in this
    /// crate owns its state, so they are vacuous here.
    pub(crate) fn run<N>(
        &mut self,
        spec: CliqueSpec,
        machines: Vec<N>,
    ) -> Result<RunReport<N::Output>, SimError>
    where
        N: NodeMachine + 'static,
        N::Msg: 'static,
        N::Output: 'static,
    {
        match self {
            Exec::OneShot => Simulator::new(spec, machines)?.run(),
            Exec::Session(session) => session.run(spec, machines),
        }
    }
}
