//! Sorting invariants: stability of provenance, batch contiguity, the
//! Lemma 4.3 balance bound under adversarial duplication, and query
//! consistency.

use cc_core::sorting::{global_indices, mode_query, select_rank, sort_keys};
use cc_sim::NodeId;

fn keys_fn(n: usize, f: impl Fn(usize, usize) -> u64) -> Vec<Vec<u64>> {
    (0..n).map(|i| (0..n).map(|j| f(i, j)).collect()).collect()
}

#[test]
fn batches_are_contiguous_and_tagged() {
    let n = 25;
    let keys = keys_fn(n, |i, j| ((i * 97 + j * 31) % 512) as u64);
    let out = sort_keys(&keys).unwrap();
    // Offsets are exactly the prefix sums and every tag points at a real
    // input position holding that very key.
    let mut expect_offset = 0u64;
    for (k, batch) in out.batches.iter().enumerate() {
        if !batch.is_empty() {
            assert_eq!(out.offsets[k], expect_offset, "node {k}");
        }
        expect_offset += batch.len() as u64;
        for t in batch {
            assert_eq!(keys[t.origin.index()][t.index_at_origin as usize], t.key);
        }
    }
    assert_eq!(expect_offset, out.total);
}

#[test]
fn provenance_is_a_permutation() {
    // Every (origin, index) appears exactly once in the output.
    let n = 16;
    let keys = keys_fn(n, |i, j| ((i + j) % 4) as u64);
    let out = sort_keys(&keys).unwrap();
    let mut seen = vec![vec![false; n]; n];
    for batch in &out.batches {
        for t in batch {
            let (o, i) = (t.origin.index(), t.index_at_origin as usize);
            assert!(!seen[o][i], "duplicate provenance ({o}, {i})");
            seen[o][i] = true;
        }
    }
    assert!(seen.iter().flatten().all(|&b| b));
}

#[test]
fn ties_break_by_origin_then_position() {
    // Footnote 5's lexicographic order is visible in the output.
    let n = 9;
    let keys = keys_fn(n, |_, _| 7);
    let out = sort_keys(&keys).unwrap();
    let flat: Vec<(u64, NodeId, u32)> = out
        .batches
        .iter()
        .flatten()
        .map(|t| (t.key, t.origin, t.index_at_origin))
        .collect();
    let mut sorted = flat.clone();
    sorted.sort_unstable();
    assert_eq!(flat, sorted);
}

#[test]
fn adversarial_duplicates_stay_balanced() {
    // Two heavy values, everything else empty: no node's final batch may
    // exceed ⌈total/n⌉ (the interval redistribution equalizes exactly).
    let n = 16;
    let keys = keys_fn(n, |i, _| (i % 2) as u64);
    let out = sort_keys(&keys).unwrap();
    let q = (out.total as usize).div_ceil(n);
    for (k, b) in out.batches.iter().enumerate() {
        assert!(b.len() <= q, "node {k} holds {} > q = {q}", b.len());
    }
}

#[test]
fn selection_against_reference_at_every_decile() {
    let n = 12;
    let keys = keys_fn(n, |i, j| ((i * 7919 + j * 104729) % 1000) as u64);
    let mut all: Vec<u64> = keys.iter().flatten().copied().collect();
    all.sort_unstable();
    for d in 0..10 {
        let rank = (d * all.len() / 10) as u64;
        let sel = select_rank(&keys, rank).unwrap();
        assert_eq!(sel.key, all[rank as usize], "decile {d}");
    }
}

#[test]
fn mode_tie_behavior_is_deterministic() {
    // Two values with equal counts: the query must return one of them
    // with the correct multiplicity, and repeat runs agree.
    let n = 8;
    let keys = keys_fn(n, |_, j| (j % 2) as u64);
    let a = mode_query(&keys).unwrap();
    let b = mode_query(&keys).unwrap();
    assert_eq!((a.key, a.count), (b.key, b.count));
    assert_eq!(a.count, (n * n / 2) as u64);
    assert!(a.key <= 1);
}

#[test]
fn indices_are_dense_over_distinct_values() {
    let n = 12;
    let keys = keys_fn(n, |i, j| ((i * j) % 9) as u64);
    let out = global_indices(&keys).unwrap();
    let mut distinct: Vec<u64> = keys.iter().flatten().copied().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let max_idx = out.indices.iter().flatten().copied().max().unwrap();
    assert_eq!(max_idx as usize, distinct.len() - 1);
    // Index order respects key order.
    for (v, node_keys) in keys.iter().enumerate().take(n) {
        for (p, &k) in node_keys.iter().enumerate() {
            let rank = distinct.binary_search(&k).unwrap() as u64;
            assert_eq!(out.indices[v][p], rank, "node {v} pos {p}");
        }
    }
}

#[test]
fn sorting_singletons_and_empties() {
    // Only one node holds anything.
    let n = 9;
    let mut keys = vec![Vec::new(); n];
    keys[4] = vec![3, 1, 2];
    let out = sort_keys(&keys).unwrap();
    let flat: Vec<u64> = out.batches.iter().flatten().map(|k| k.key).collect();
    assert_eq!(flat, vec![1, 2, 3]);
}

#[test]
fn sorting_is_deterministic() {
    let n = 16;
    let keys = keys_fn(n, |i, j| ((i * 13 + j * 29) % 64) as u64);
    let a = sort_keys(&keys).unwrap();
    let b = sort_keys(&keys).unwrap();
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.metrics.total_bits(), b.metrics.total_bits());
}

#[test]
fn round_count_is_input_independent() {
    // The deterministic sort's round count may not leak anything about
    // the data: all fully loaded inputs take the same number of rounds.
    let n = 16;
    let r1 = sort_keys(&keys_fn(n, |i, j| (i * n + j) as u64))
        .unwrap()
        .metrics
        .comm_rounds();
    let r2 = sort_keys(&keys_fn(n, |_, _| 0))
        .unwrap()
        .metrics
        .comm_rounds();
    let r3 = sort_keys(&keys_fn(n, |i, j| ((i ^ j) * 12345 % 77) as u64))
        .unwrap()
        .metrics
        .comm_rounds();
    assert_eq!(r1, r2);
    assert_eq!(r2, r3);
}
