//! Coverage for the paper's §6 extensions and the facade surface.

use cc_core::routing::{route_large_messages, LargeMessage};
use cc_core::sorting::small_key_census;
use cc_core::CongestedClique;
use cc_sim::NodeId;

#[test]
fn large_messages_scale_rounds_with_width() {
    // §6.1: rounds grow linearly in the payload width.
    let n = 9;
    let mk = |words: usize| -> Vec<Vec<LargeMessage>> {
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        LargeMessage::new(
                            NodeId::new(i),
                            NodeId::new(j),
                            0,
                            vec![(i * n + j) as u64; words],
                        )
                    })
                    .collect()
            })
            .collect()
    };
    let r1 = route_large_messages(n, mk(1)).unwrap().total_rounds;
    let r3 = route_large_messages(n, mk(3)).unwrap().total_rounds;
    assert_eq!(r3, 3 * r1);
}

#[test]
fn census_handles_full_per_node_load() {
    // Every node holds n keys — the paper's stated load.
    let n = 128;
    let keys: Vec<Vec<u64>> = (0..n).map(|v| vec![(v % 2) as u64; n]).collect();
    let out = small_key_census(&keys, 1).unwrap();
    assert_eq!(out.totals.iter().sum::<u64>(), (n * n) as u64);
    assert_eq!(out.metrics.comm_rounds(), 2);
}

#[test]
fn census_prefixes_are_monotone() {
    let n = 128;
    let keys: Vec<Vec<u64>> = (0..n).map(|v| vec![0u64; v % 7]).collect();
    let out = small_key_census(&keys, 1).unwrap();
    for kappa in 0..2 {
        let mut prev = 0;
        for v in 0..n {
            assert!(out.prefix[v][kappa] >= prev, "prefix must be monotone");
            prev = out.prefix[v][kappa];
        }
    }
}

#[test]
fn facade_full_surface_smoke() {
    let n = 16;
    let clique = CongestedClique::new(n).unwrap();
    assert_eq!(clique.n(), n);
    assert_eq!(clique.sqrt_n(), 4);

    let inst = cc_core::routing::RoutingInstance::from_demands(n, |_, _| 1).unwrap();
    assert_eq!(clique.route(&inst).unwrap().metrics.comm_rounds(), 16);
    assert_eq!(
        clique.route_optimized(&inst).unwrap().metrics.comm_rounds(),
        12
    );

    let keys: Vec<Vec<u64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i * 3 + j) % 8) as u64).collect())
        .collect();
    let sorted = clique.sort(&keys).unwrap();
    assert_eq!(sorted.metrics.comm_rounds(), 37);
    let idx = clique.global_indices(&keys).unwrap();
    assert_eq!(idx.indices.len(), n);
    let sel = clique.select(&keys, 0).unwrap();
    let min = keys.iter().flatten().min().copied().unwrap();
    assert_eq!(sel.key, min);
    let mode = clique.mode(&keys).unwrap();
    assert!(mode.count >= ((n * n) / 8) as u64);
}

#[test]
fn facade_rejects_shape_mismatches() {
    let clique = CongestedClique::new(8).unwrap();
    assert!(clique.sort(&vec![vec![]; 7]).is_err());
    assert!(clique.mode(&vec![vec![]; 9]).is_err());
    assert!(clique.small_key_census(&vec![vec![]; 7], 1).is_err());
}

#[test]
fn error_display_chains() {
    let e = cc_core::CoreError::invalid("shape");
    assert!(format!("{e}").contains("shape"));
    let sim: cc_core::CoreError = cc_sim::SimError::TooManyRounds { limit: 3 }.into();
    assert!(format!("{sim}").contains("3 rounds"));
}
