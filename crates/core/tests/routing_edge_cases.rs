//! Routing edge cases and failure injection across both router variants.

use cc_core::routing::{
    route_deterministic, route_optimized, route_with_spec, spec_for_routing, RoutedMessage,
    RoutingInstance,
};
use cc_sim::{NodeId, Payload, SimError};

#[test]
fn every_size_from_4_to_30_full_load() {
    for n in 4..=30usize {
        let inst = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        let det = route_deterministic(&inst).unwrap();
        assert!(det.metrics.comm_rounds() <= 16, "det n={n}");
        let opt = route_optimized(&inst).unwrap();
        assert!(opt.metrics.comm_rounds() <= 12, "opt n={n}");
    }
}

#[test]
fn single_message_instances() {
    for n in [4usize, 9, 10, 17] {
        let inst =
            RoutingInstance::from_demands(n, |i, j| u32::from(i == 0 && j == n - 1)).unwrap();
        let out = route_deterministic(&inst).unwrap();
        assert_eq!(out.delivered[n - 1].len(), 1);
        assert!(out.delivered[..n - 1].iter().all(Vec::is_empty));
    }
}

#[test]
fn all_messages_to_self() {
    let n = 16;
    let inst = RoutingInstance::from_demands(n, |i, j| u32::from(i == j) * n as u32).unwrap();
    for out in [
        route_deterministic(&inst).unwrap(),
        route_optimized(&inst).unwrap(),
    ] {
        for (k, d) in out.delivered.iter().enumerate() {
            assert_eq!(d.len(), n);
            assert!(d.iter().all(|m| m.src.index() == k && m.dst.index() == k));
        }
    }
}

#[test]
fn one_hot_column_receiver() {
    // Every node sends everything to node 0 — the maximal receive skew
    // the instance bounds allow (1 message per sender).
    let n = 20;
    let inst = RoutingInstance::from_demands(n, |_, j| u32::from(j == 0)).unwrap();
    let out = route_deterministic(&inst).unwrap();
    assert_eq!(out.delivered[0].len(), n);
}

#[test]
fn transpose_symmetry() {
    // Routing the transpose demand delivers the transposed multiset.
    let n = 9;
    let inst = RoutingInstance::from_demands(n, |i, j| ((i * 3 + j) % 2) as u32).unwrap();
    let tinst = RoutingInstance::from_demands(n, |i, j| ((j * 3 + i) % 2) as u32).unwrap();
    let a = route_deterministic(&inst).unwrap();
    let b = route_deterministic(&tinst).unwrap();
    let sent_a: usize = a.delivered.iter().map(Vec::len).sum();
    let sent_b: usize = b.delivered.iter().map(Vec::len).sum();
    assert_eq!(sent_a, sent_b);
}

#[test]
fn custom_payload_type_routes() {
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Pair(u32, u32);
    impl Payload for Pair {
        fn size_bits(&self, n: usize) -> u64 {
            2 * cc_sim::util::word_bits(n)
        }
    }
    let n = 9;
    let sends: Vec<Vec<RoutedMessage<Pair>>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    RoutedMessage::new(NodeId::new(i), NodeId::new(j), 0, Pair(i as u32, j as u32))
                })
                .collect()
        })
        .collect();
    let inst = RoutingInstance::new(n, sends).unwrap();
    let out = route_deterministic(&inst).unwrap();
    for (k, d) in out.delivered.iter().enumerate() {
        assert_eq!(d.len(), n);
        assert!(d.iter().all(|m| m.payload.1 == k as u32));
    }
}

#[test]
fn budget_violation_is_surfaced_not_masked() {
    // Starve the router: a 2-word budget cannot carry its envelopes.
    let n = 16;
    let inst = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
    let spec = spec_for_routing(n).with_budget_words(2);
    let err = route_with_spec(&inst, spec).unwrap_err();
    match err {
        cc_core::CoreError::Sim(SimError::BudgetExceeded { .. }) => {}
        other => panic!("expected budget violation, got {other:?}"),
    }
}

#[test]
fn round_limit_is_surfaced() {
    let n = 16;
    let inst = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
    let spec = spec_for_routing(n).with_max_rounds(3);
    let err = route_with_spec(&inst, spec).unwrap_err();
    assert!(matches!(
        err,
        cc_core::CoreError::Sim(SimError::TooManyRounds { .. })
    ));
}

#[test]
fn metrics_conserve_messages_across_phases() {
    // Every injected message is moved a bounded number of times: total
    // engine messages stay within a small multiple of the instance size.
    let n = 36;
    let inst = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
    let out = route_deterministic(&inst).unwrap();
    let injected = inst.total_messages() as u64;
    assert!(
        out.metrics.total_messages() >= injected,
        "at least one hop each"
    );
    assert!(
        out.metrics.total_messages() <= 64 * injected,
        "{} engine messages for {} injected",
        out.metrics.total_messages(),
        injected
    );
}

#[test]
fn seq_numbers_allow_parallel_edges() {
    // 5 distinct messages between the same ordered pair.
    let n = 9;
    let inst =
        RoutingInstance::from_demands(n, |i, j| if i == 2 && j == 7 { 5 } else { 0 }).unwrap();
    let out = route_deterministic(&inst).unwrap();
    let seqs: Vec<u32> = out.delivered[7].iter().map(|m| m.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
}

#[test]
fn max_load_constructor_accepts_double_load() {
    let n = 8;
    // 2n messages per pair-row: valid only under the relaxed cap.
    let sends: Vec<Vec<RoutedMessage>> = (0..n)
        .map(|i| {
            (0..2 * n)
                .map(|k| {
                    RoutedMessage::new(NodeId::new(i), NodeId::new(k % n), (k / n) as u32, k as u64)
                })
                .collect()
        })
        .collect();
    assert!(RoutingInstance::new(n, sends.clone()).is_err());
    let inst = RoutingInstance::with_max_load(n, sends, 2 * n).unwrap();
    let out = route_deterministic(&inst).unwrap();
    assert!(out.metrics.comm_rounds() <= 16);
    assert!(out.delivered.iter().all(|d| d.len() == 2 * n));
}

#[test]
fn work_accounting_is_monotone_in_load() {
    let n = 16;
    let light = RoutingInstance::from_demands(n, |i, j| u32::from((i + j) % 8 == 0)).unwrap();
    let heavy = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
    let wl = route_deterministic(&light)
        .unwrap()
        .metrics
        .max_node_steps();
    let wh = route_deterministic(&heavy)
        .unwrap()
        .metrics
        .max_node_steps();
    assert!(wh >= wl);
}
