//! # cc-workloads — instance generators for the experiments
//!
//! Routing workloads (Problem 3.1) and key distributions (Problem 4.1)
//! used by the test suite and the benchmark harness. All generators are
//! deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_core::routing::RoutingInstance;
use cc_core::CoreError;
use cc_rand::DetRng;

/// A fully loaded, perfectly balanced random instance: the demand matrix
/// is a sum of `n` random permutation matrices, so every node sends and
/// receives exactly `n` messages (the canonical Problem 3.1 shape).
///
/// # Errors
///
/// Never fails for `n ≥ 1`; the signature matches the other generators.
pub fn balanced_random(n: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut demands = vec![0u32; n * n];
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..n {
        rng.shuffle(&mut perm);
        for (i, &j) in perm.iter().enumerate() {
            demands[i * n + j] += 1;
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// The identity-shifted permutation workload: node `i` sends one message
/// to `(i + shift) mod n` — the lightest possible full-coverage load.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn permutation(n: usize, shift: usize) -> Result<RoutingInstance, CoreError> {
    RoutingInstance::from_demands(n, |i, j| u32::from((i + shift) % n == j))
}

/// The cyclic worst case for direct routing: all `n` messages of node `i`
/// target node `i+1`.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn cyclic_skew(n: usize) -> Result<RoutingInstance, CoreError> {
    RoutingInstance::from_demands(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 })
}

/// Block-local traffic: node `i` spreads its messages over its own
/// `√n`-block — stresses the within-set machinery.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn block_skew(n: usize) -> Result<RoutingInstance, CoreError> {
    let s = cc_sim::util::isqrt(n).max(1);
    RoutingInstance::from_demands(n, |i, j| {
        if i / s == j / s {
            (n / s.min(n)) as u32
        } else {
            0
        }
    })
}

/// A sparse random instance: each node sends `load ≤ n` messages to
/// uniformly random distinct-ish destinations, with receive caps enforced
/// by rejection.
///
/// # Errors
///
/// Never fails for `n ≥ 1` and `load ≤ n`.
pub fn sparse_random(n: usize, load: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    assert!(load <= n, "load must be at most n");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut demands = vec![0u32; n * n];
    let mut receive = vec![0usize; n];
    for i in 0..n {
        let mut placed = 0;
        let mut guard = 0;
        while placed < load && guard < 64 * n {
            let j = rng.gen_range_usize(0..n);
            guard += 1;
            if receive[j] < n {
                demands[i * n + j] += 1;
                receive[j] += 1;
                placed += 1;
            }
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// A Zipf-skewed demand instance: every node sends `load ≤ n` messages
/// whose destinations are drawn from a Zipf(`theta`) rank distribution
/// (destination `j` has weight `∝ 1/(j+1)^theta`, so low-numbered nodes
/// are traffic magnets), with the Problem 3.1 receive cap of `n` enforced
/// by rejection plus a deterministic spill onto the first non-full
/// receivers. Deterministic in `seed`. The canonical "skewed popularity"
/// scenario for the query server's mixed-traffic benches: hot receivers
/// saturate their cap while the tail stays sparse.
///
/// # Errors
///
/// Never fails for `n ≥ 1` and `load ≤ n`.
///
/// # Panics
///
/// Panics if `load > n` (the instance could not satisfy Problem 3.1).
pub fn zipf_demands(
    n: usize,
    load: usize,
    theta: f64,
    seed: u64,
) -> Result<RoutingInstance, CoreError> {
    assert!(load <= n, "load must be at most n");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for j in 0..n {
        total += 1.0 / ((j + 1) as f64).powf(theta);
        cumulative.push(total);
    }
    let mut demands = vec![0u32; n * n];
    let mut receive = vec![0usize; n];
    for i in 0..n {
        let mut placed = 0;
        let mut guard = 0;
        while placed < load && guard < 64 * n {
            guard += 1;
            let target = rng.gen_range_f64(0.0..total);
            let j = cumulative.partition_point(|&c| c < target).min(n - 1);
            if receive[j] < n {
                demands[i * n + j] += 1;
                receive[j] += 1;
                placed += 1;
            }
        }
        // The hot head can fill up; spill the remainder onto the first
        // receivers with capacity (always enough: total capacity is n²,
        // total demand n·load ≤ n²).
        let mut j = 0;
        while placed < load {
            if receive[j] < n {
                demands[i * n + j] += 1;
                receive[j] += 1;
                placed += 1;
            } else {
                j += 1;
            }
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// The all-to-one-block hotspot: every node sends one message to each
/// member of one `√n`-sized block, chosen deterministically from `seed` —
/// so each hot-block member receives exactly `n` messages, the Problem
/// 3.1 receive cap, while every other node receives nothing. This is the
/// heaviest admissible concentration of traffic onto a single block, the
/// regime the paper's set-to-set primitives (Corollaries 3.3/3.4) are
/// built to survive.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn hotspot(n: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    let s = cc_sim::util::isqrt(n).max(1);
    // `.max(1)` keeps n = 0 on the same path as the other generators
    // (an empty instance), instead of panicking on an empty RNG range.
    let blocks = n.div_ceil(s).max(1);
    let mut rng = DetRng::seed_from_u64(seed);
    let hot = rng.gen_range_usize(0..blocks);
    let lo = hot * s;
    let hi = ((hot + 1) * s).min(n);
    RoutingInstance::from_demands(n, |_, j| u32::from(j >= lo && j < hi))
}

/// The seven serving entry points, for weighting a [`RequestMix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryPoint {
    /// `Request::Route` — Theorem 3.7 routing.
    Route,
    /// `Request::RouteOptimized` — Theorem 5.4 routing.
    RouteOptimized,
    /// `Request::Sort` — Theorem 4.5 sorting.
    Sort,
    /// `Request::GlobalIndices` — Corollary 4.6 indexing.
    GlobalIndices,
    /// `Request::Select` — constant-round rank selection.
    Select,
    /// `Request::Mode` — most frequent key.
    Mode,
    /// `Request::SmallKeyCensus` — §6.3 census.
    SmallKeyCensus,
}

/// All entry points, in weight-array order.
pub const ENTRY_POINTS: [EntryPoint; 7] = [
    EntryPoint::Route,
    EntryPoint::RouteOptimized,
    EntryPoint::Sort,
    EntryPoint::GlobalIndices,
    EntryPoint::Select,
    EntryPoint::Mode,
    EntryPoint::SmallKeyCensus,
];

/// A seeded traffic generator over the query-serving surface: a stream of
/// [`Request`](cc_server::Request)s with configurable weights over all
/// seven entry points and a Zipf rank distribution over the configured
/// clique sizes (the first size is the hottest) — the canonical
/// mixed-traffic shape shared by the `net_swarm` example, the
/// `net_throughput` bench rows and the load tests.
///
/// Payloads are drawn deterministically from the seed via the sibling
/// generators ([`balanced_random`], [`uniform_keys`], [`zipf_keys`],
/// [`duplicate_keys`]), so the same `(mix, count, seed)` triple always
/// yields the same requests — on any host, in any process, which is what
/// lets a network client and an in-process reference generate identical
/// traffic independently.
///
/// Note on the census: `SmallKeyCensus` requests are generated with
/// `key_bits = 1`, which the service accepts only when the key domain
/// fits the clique (`2·⌈log₂(n+1)⌉² ≤ n`, so n ≳ 128). On smaller
/// cliques they are served as deterministic query errors — deliberate
/// mid-stream error traffic for parity testing; give the entry point
/// weight 0 for always-successful mixes.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestMix {
    sizes: Vec<usize>,
    theta: f64,
    weights: [u32; 7],
}

impl RequestMix {
    /// A mix over `sizes` with every entry point equally weighted and a
    /// Zipf exponent of 1.0 over the size ranks.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty.
    pub fn new(sizes: impl Into<Vec<usize>>) -> Self {
        let sizes = sizes.into();
        assert!(!sizes.is_empty(), "at least one clique size required");
        RequestMix {
            sizes,
            theta: 1.0,
            weights: [1; 7],
        }
    }

    /// Sets one entry point's weight (relative to the other six).
    #[must_use]
    pub fn with_weight(mut self, entry: EntryPoint, weight: u32) -> Self {
        let index = ENTRY_POINTS
            .iter()
            .position(|&e| e == entry)
            .expect("entry point is in ENTRY_POINTS");
        self.weights[index] = weight;
        self
    }

    /// Replaces all seven weights at once, in [`ENTRY_POINTS`] order.
    #[must_use]
    pub fn with_weights(mut self, weights: [u32; 7]) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the Zipf exponent over the size ranks (`0.0` is uniform;
    /// larger skews harder toward the first configured size).
    #[must_use]
    pub fn with_zipf_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Generates `count` requests, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<cc_server::Request> {
        use cc_server::Request;
        let total: u64 = self.weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "at least one entry point needs positive weight");
        let mut cumulative = Vec::with_capacity(self.sizes.len());
        let mut zipf_total = 0.0f64;
        for rank in 0..self.sizes.len() {
            zipf_total += 1.0 / ((rank + 1) as f64).powf(self.theta);
            cumulative.push(zipf_total);
        }
        let mut rng = DetRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let target = rng.gen_range_f64(0.0..zipf_total);
                let rank = cumulative
                    .partition_point(|&c| c < target)
                    .min(self.sizes.len() - 1);
                let n = self.sizes[rank];
                let mut pick = rng.gen_range_u64(0..total);
                let mut entry = EntryPoint::Route;
                for (&e, &w) in ENTRY_POINTS.iter().zip(&self.weights) {
                    if pick < u64::from(w) {
                        entry = e;
                        break;
                    }
                    pick -= u64::from(w);
                }
                let payload_seed = rng.next_u64();
                match entry {
                    EntryPoint::Route => {
                        Request::Route(balanced_random(n, payload_seed).expect("balanced instance"))
                    }
                    EntryPoint::RouteOptimized => Request::RouteOptimized(
                        balanced_random(n, payload_seed).expect("balanced instance"),
                    ),
                    EntryPoint::Sort => Request::Sort(uniform_keys(n, payload_seed)),
                    EntryPoint::GlobalIndices => {
                        Request::GlobalIndices(zipf_keys(n, (4 * n.max(1)) as u64, payload_seed))
                    }
                    EntryPoint::Select => Request::Select {
                        keys: uniform_keys(n, payload_seed),
                        rank: rng.gen_range_u64(0..((n * n) as u64).max(1)),
                    },
                    EntryPoint::Mode => {
                        Request::Mode(duplicate_keys(n, (n as u64 / 2).max(2), payload_seed))
                    }
                    EntryPoint::SmallKeyCensus => Request::SmallKeyCensus {
                        keys: duplicate_keys(n, 2, payload_seed),
                        key_bits: 1,
                    },
                }
            })
            .collect()
    }
}

/// Uniform random keys, `n` per node.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range_u64(0..u64::MAX - 1)).collect())
        .collect()
}

/// Globally pre-sorted keys (node `i` already holds its final batch).
pub fn sorted_keys(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| (0..n).map(|j| (i * n + j) as u64).collect())
        .collect()
}

/// Globally reverse-sorted keys.
pub fn reverse_keys(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| (0..n).map(|j| (n * n - i * n - j) as u64).collect())
        .collect()
}

/// Heavy duplication: only `distinct` different values exist.
pub fn duplicate_keys(n: usize, distinct: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| rng.gen_range_u64(0..distinct.max(1)))
                .collect()
        })
        .collect()
}

/// Zipf-flavoured skewed values (rank `r` drawn with weight `∝ 1/(r+1)`).
pub fn zipf_keys(n: usize, universe: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    let harmonic: f64 = (1..=universe).map(|r| 1.0 / r as f64).sum();
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| {
                    let target = rng.gen_range_f64(0.0..harmonic);
                    let mut acc = 0.0;
                    for r in 1..=universe {
                        acc += 1.0 / r as f64;
                        if acc >= target {
                            return r - 1;
                        }
                    }
                    universe - 1
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_random_is_fully_loaded() {
        let inst = balanced_random(12, 5).unwrap();
        for v in 0..12 {
            assert_eq!(inst.sends(v).len(), 12);
        }
        let recv = inst.expected_receives();
        assert!(recv.iter().all(|r| r.len() == 12));
    }

    #[test]
    fn generators_validate() {
        assert!(permutation(7, 3).is_ok());
        assert!(cyclic_skew(9).is_ok());
        assert!(block_skew(16).is_ok());
        assert!(sparse_random(10, 4, 1).is_ok());
    }

    /// Both new demand generators must respect Problem 3.1: every node
    /// sends at most `n` messages (row sums) and receives at most `n`
    /// (column sums) — `RoutingInstance` validation enforces it, and the
    /// shapes are asserted explicitly here.
    #[test]
    fn zipf_demands_respects_problem_31_bounds_and_skews() {
        let (n, load) = (24, 8);
        let inst = zipf_demands(n, load, 1.2, 7).unwrap();
        for v in 0..n {
            assert_eq!(inst.sends(v).len(), load, "row sum of node {v}");
        }
        let recv = inst.expected_receives();
        assert!(recv.iter().all(|r| r.len() <= n), "column sums ≤ n");
        assert_eq!(recv.iter().map(Vec::len).sum::<usize>(), n * load);
        // The point of the generator: the head is hot, the tail sparse.
        let hottest = recv.iter().map(Vec::len).max().unwrap();
        let coldest = recv.iter().map(Vec::len).min().unwrap();
        assert!(
            hottest >= 2 * load && coldest < load,
            "expected skew, got max {hottest} / min {coldest} (mean {load})"
        );
        // Full load saturates every receiver exactly at the cap.
        let full = zipf_demands(12, 12, 1.5, 3).unwrap();
        let full_recv = full.expected_receives();
        assert!(full_recv.iter().all(|r| r.len() == 12));
    }

    #[test]
    fn hotspot_saturates_one_block_at_the_receive_cap() {
        let n = 20; // s = 4, 5 blocks
        let inst = hotspot(n, 11).unwrap();
        let s = cc_sim::util::isqrt(n);
        for v in 0..n {
            assert_eq!(inst.sends(v).len(), s, "row sum of node {v}");
        }
        let recv = inst.expected_receives();
        let hot: Vec<usize> = (0..n).filter(|&v| !recv[v].is_empty()).collect();
        assert_eq!(hot.len(), s, "exactly one block is hot");
        assert!(
            hot.windows(2).all(|w| w[1] == w[0] + 1),
            "block is contiguous"
        );
        assert_eq!(hot[0] % s, 0, "block-aligned");
        for &v in &hot {
            assert_eq!(recv[v].len(), n, "hot member at the receive cap");
        }
        // Some seed moves the hotspot (5 blocks, so seeds can't all agree).
        let moved = (0..16).any(|seed| hotspot(n, seed).unwrap() != inst);
        assert!(moved, "hot block never moved across 16 seeds");
    }

    #[test]
    fn new_generators_accept_the_empty_clique() {
        // Same contract as the siblings: n = 0 is an empty instance, not
        // a panic.
        assert_eq!(hotspot(0, 3).unwrap().total_messages(), 0);
        assert_eq!(zipf_demands(0, 0, 1.0, 3).unwrap().total_messages(), 0);
    }

    #[test]
    fn new_generators_deterministic_in_seed() {
        assert_eq!(
            zipf_demands(16, 6, 1.1, 9).unwrap(),
            zipf_demands(16, 6, 1.1, 9).unwrap()
        );
        assert_ne!(
            zipf_demands(16, 6, 1.1, 9).unwrap(),
            zipf_demands(16, 6, 1.1, 10).unwrap()
        );
        assert_eq!(hotspot(20, 4).unwrap(), hotspot(20, 4).unwrap());
    }

    #[test]
    fn request_mix_is_deterministic_and_respects_weights() {
        let mix = RequestMix::new(vec![8usize, 12, 16]).with_zipf_theta(1.2);
        let a = mix.generate(48, 7);
        let b = mix.generate(48, 7);
        assert_eq!(a, b);
        assert_ne!(a, mix.generate(48, 8));
        assert_eq!(a.len(), 48);
        // Every size is one of the configured ones.
        assert!(a.iter().all(|r| [8, 12, 16].contains(&r.n())));
        // Equal weights over 48 draws: all seven entry points appear.
        let kinds: std::collections::HashSet<_> = a.iter().map(std::mem::discriminant).collect();
        assert_eq!(kinds.len(), 7);

        // Zero-weighted entry points never appear.
        let sorts_only = RequestMix::new(vec![8usize])
            .with_weights([0, 0, 1, 0, 0, 0, 0])
            .generate(16, 3);
        assert!(sorts_only
            .iter()
            .all(|r| matches!(r, cc_server::Request::Sort(_))));

        // Zipf over sizes: the first configured size is the hottest.
        let firsts = a.iter().filter(|r| r.n() == 8).count();
        let lasts = a.iter().filter(|r| r.n() == 16).count();
        assert!(firsts > lasts, "zipf head {firsts} vs tail {lasts}");
    }

    #[test]
    fn request_mix_payloads_are_servable() {
        // Every generated request (census excluded — see the type docs)
        // serves successfully on a direct service.
        let requests = RequestMix::new(vec![9usize])
            .with_weight(EntryPoint::SmallKeyCensus, 0)
            .generate(14, 5);
        let mut service = cc_core::CliqueService::new(9).unwrap();
        for request in &requests {
            request
                .serve_on(&mut service)
                .unwrap_or_else(|e| panic!("{request:?}: {e}"));
        }
        // And the census variant errors deterministically on a small
        // clique — the documented mid-stream error traffic.
        let census = RequestMix::new(vec![9usize])
            .with_weights([0, 0, 0, 0, 0, 0, 1])
            .generate(2, 5);
        for request in &census {
            let a = request.serve_on(&mut service).unwrap_err();
            let b = request.serve_on(&mut service).unwrap_err();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn key_generators_shape() {
        for keys in [
            uniform_keys(8, 3),
            sorted_keys(8),
            reverse_keys(8),
            duplicate_keys(8, 3, 1),
            zipf_keys(8, 50, 2),
        ] {
            assert_eq!(keys.len(), 8);
            assert!(keys.iter().all(|l| l.len() == 8));
            assert!(keys.iter().flatten().all(|&k| k < u64::MAX));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_keys(6, 9), uniform_keys(6, 9));
        assert_eq!(
            balanced_random(6, 9).unwrap(),
            balanced_random(6, 9).unwrap()
        );
    }
}
