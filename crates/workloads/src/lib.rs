//! # cc-workloads — instance generators for the experiments
//!
//! Routing workloads (Problem 3.1) and key distributions (Problem 4.1)
//! used by the test suite and the benchmark harness. All generators are
//! deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_core::routing::RoutingInstance;
use cc_core::CoreError;
use cc_rand::DetRng;

/// A fully loaded, perfectly balanced random instance: the demand matrix
/// is a sum of `n` random permutation matrices, so every node sends and
/// receives exactly `n` messages (the canonical Problem 3.1 shape).
///
/// # Errors
///
/// Never fails for `n ≥ 1`; the signature matches the other generators.
pub fn balanced_random(n: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut demands = vec![0u32; n * n];
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..n {
        rng.shuffle(&mut perm);
        for (i, &j) in perm.iter().enumerate() {
            demands[i * n + j] += 1;
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// The identity-shifted permutation workload: node `i` sends one message
/// to `(i + shift) mod n` — the lightest possible full-coverage load.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn permutation(n: usize, shift: usize) -> Result<RoutingInstance, CoreError> {
    RoutingInstance::from_demands(n, |i, j| u32::from((i + shift) % n == j))
}

/// The cyclic worst case for direct routing: all `n` messages of node `i`
/// target node `i+1`.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn cyclic_skew(n: usize) -> Result<RoutingInstance, CoreError> {
    RoutingInstance::from_demands(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 })
}

/// Block-local traffic: node `i` spreads its messages over its own
/// `√n`-block — stresses the within-set machinery.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn block_skew(n: usize) -> Result<RoutingInstance, CoreError> {
    let s = cc_sim::util::isqrt(n).max(1);
    RoutingInstance::from_demands(n, |i, j| {
        if i / s == j / s {
            (n / s.min(n)) as u32
        } else {
            0
        }
    })
}

/// A sparse random instance: each node sends `load ≤ n` messages to
/// uniformly random distinct-ish destinations, with receive caps enforced
/// by rejection.
///
/// # Errors
///
/// Never fails for `n ≥ 1` and `load ≤ n`.
pub fn sparse_random(n: usize, load: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    assert!(load <= n, "load must be at most n");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut demands = vec![0u32; n * n];
    let mut receive = vec![0usize; n];
    for i in 0..n {
        let mut placed = 0;
        let mut guard = 0;
        while placed < load && guard < 64 * n {
            let j = rng.gen_range_usize(0..n);
            guard += 1;
            if receive[j] < n {
                demands[i * n + j] += 1;
                receive[j] += 1;
                placed += 1;
            }
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// A Zipf-skewed demand instance: every node sends `load ≤ n` messages
/// whose destinations are drawn from a Zipf(`theta`) rank distribution
/// (destination `j` has weight `∝ 1/(j+1)^theta`, so low-numbered nodes
/// are traffic magnets), with the Problem 3.1 receive cap of `n` enforced
/// by rejection plus a deterministic spill onto the first non-full
/// receivers. Deterministic in `seed`. The canonical "skewed popularity"
/// scenario for the query server's mixed-traffic benches: hot receivers
/// saturate their cap while the tail stays sparse.
///
/// # Errors
///
/// Never fails for `n ≥ 1` and `load ≤ n`.
///
/// # Panics
///
/// Panics if `load > n` (the instance could not satisfy Problem 3.1).
pub fn zipf_demands(
    n: usize,
    load: usize,
    theta: f64,
    seed: u64,
) -> Result<RoutingInstance, CoreError> {
    assert!(load <= n, "load must be at most n");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for j in 0..n {
        total += 1.0 / ((j + 1) as f64).powf(theta);
        cumulative.push(total);
    }
    let mut demands = vec![0u32; n * n];
    let mut receive = vec![0usize; n];
    for i in 0..n {
        let mut placed = 0;
        let mut guard = 0;
        while placed < load && guard < 64 * n {
            guard += 1;
            let target = rng.gen_range_f64(0.0..total);
            let j = cumulative.partition_point(|&c| c < target).min(n - 1);
            if receive[j] < n {
                demands[i * n + j] += 1;
                receive[j] += 1;
                placed += 1;
            }
        }
        // The hot head can fill up; spill the remainder onto the first
        // receivers with capacity (always enough: total capacity is n²,
        // total demand n·load ≤ n²).
        let mut j = 0;
        while placed < load {
            if receive[j] < n {
                demands[i * n + j] += 1;
                receive[j] += 1;
                placed += 1;
            } else {
                j += 1;
            }
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// The all-to-one-block hotspot: every node sends one message to each
/// member of one `√n`-sized block, chosen deterministically from `seed` —
/// so each hot-block member receives exactly `n` messages, the Problem
/// 3.1 receive cap, while every other node receives nothing. This is the
/// heaviest admissible concentration of traffic onto a single block, the
/// regime the paper's set-to-set primitives (Corollaries 3.3/3.4) are
/// built to survive.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn hotspot(n: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    let s = cc_sim::util::isqrt(n).max(1);
    // `.max(1)` keeps n = 0 on the same path as the other generators
    // (an empty instance), instead of panicking on an empty RNG range.
    let blocks = n.div_ceil(s).max(1);
    let mut rng = DetRng::seed_from_u64(seed);
    let hot = rng.gen_range_usize(0..blocks);
    let lo = hot * s;
    let hi = ((hot + 1) * s).min(n);
    RoutingInstance::from_demands(n, |_, j| u32::from(j >= lo && j < hi))
}

/// Uniform random keys, `n` per node.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range_u64(0..u64::MAX - 1)).collect())
        .collect()
}

/// Globally pre-sorted keys (node `i` already holds its final batch).
pub fn sorted_keys(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| (0..n).map(|j| (i * n + j) as u64).collect())
        .collect()
}

/// Globally reverse-sorted keys.
pub fn reverse_keys(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| (0..n).map(|j| (n * n - i * n - j) as u64).collect())
        .collect()
}

/// Heavy duplication: only `distinct` different values exist.
pub fn duplicate_keys(n: usize, distinct: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| rng.gen_range_u64(0..distinct.max(1)))
                .collect()
        })
        .collect()
}

/// Zipf-flavoured skewed values (rank `r` drawn with weight `∝ 1/(r+1)`).
pub fn zipf_keys(n: usize, universe: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    let harmonic: f64 = (1..=universe).map(|r| 1.0 / r as f64).sum();
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| {
                    let target = rng.gen_range_f64(0.0..harmonic);
                    let mut acc = 0.0;
                    for r in 1..=universe {
                        acc += 1.0 / r as f64;
                        if acc >= target {
                            return r - 1;
                        }
                    }
                    universe - 1
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_random_is_fully_loaded() {
        let inst = balanced_random(12, 5).unwrap();
        for v in 0..12 {
            assert_eq!(inst.sends(v).len(), 12);
        }
        let recv = inst.expected_receives();
        assert!(recv.iter().all(|r| r.len() == 12));
    }

    #[test]
    fn generators_validate() {
        assert!(permutation(7, 3).is_ok());
        assert!(cyclic_skew(9).is_ok());
        assert!(block_skew(16).is_ok());
        assert!(sparse_random(10, 4, 1).is_ok());
    }

    /// Both new demand generators must respect Problem 3.1: every node
    /// sends at most `n` messages (row sums) and receives at most `n`
    /// (column sums) — `RoutingInstance` validation enforces it, and the
    /// shapes are asserted explicitly here.
    #[test]
    fn zipf_demands_respects_problem_31_bounds_and_skews() {
        let (n, load) = (24, 8);
        let inst = zipf_demands(n, load, 1.2, 7).unwrap();
        for v in 0..n {
            assert_eq!(inst.sends(v).len(), load, "row sum of node {v}");
        }
        let recv = inst.expected_receives();
        assert!(recv.iter().all(|r| r.len() <= n), "column sums ≤ n");
        assert_eq!(recv.iter().map(Vec::len).sum::<usize>(), n * load);
        // The point of the generator: the head is hot, the tail sparse.
        let hottest = recv.iter().map(Vec::len).max().unwrap();
        let coldest = recv.iter().map(Vec::len).min().unwrap();
        assert!(
            hottest >= 2 * load && coldest < load,
            "expected skew, got max {hottest} / min {coldest} (mean {load})"
        );
        // Full load saturates every receiver exactly at the cap.
        let full = zipf_demands(12, 12, 1.5, 3).unwrap();
        let full_recv = full.expected_receives();
        assert!(full_recv.iter().all(|r| r.len() == 12));
    }

    #[test]
    fn hotspot_saturates_one_block_at_the_receive_cap() {
        let n = 20; // s = 4, 5 blocks
        let inst = hotspot(n, 11).unwrap();
        let s = cc_sim::util::isqrt(n);
        for v in 0..n {
            assert_eq!(inst.sends(v).len(), s, "row sum of node {v}");
        }
        let recv = inst.expected_receives();
        let hot: Vec<usize> = (0..n).filter(|&v| !recv[v].is_empty()).collect();
        assert_eq!(hot.len(), s, "exactly one block is hot");
        assert!(
            hot.windows(2).all(|w| w[1] == w[0] + 1),
            "block is contiguous"
        );
        assert_eq!(hot[0] % s, 0, "block-aligned");
        for &v in &hot {
            assert_eq!(recv[v].len(), n, "hot member at the receive cap");
        }
        // Some seed moves the hotspot (5 blocks, so seeds can't all agree).
        let moved = (0..16).any(|seed| hotspot(n, seed).unwrap() != inst);
        assert!(moved, "hot block never moved across 16 seeds");
    }

    #[test]
    fn new_generators_accept_the_empty_clique() {
        // Same contract as the siblings: n = 0 is an empty instance, not
        // a panic.
        assert_eq!(hotspot(0, 3).unwrap().total_messages(), 0);
        assert_eq!(zipf_demands(0, 0, 1.0, 3).unwrap().total_messages(), 0);
    }

    #[test]
    fn new_generators_deterministic_in_seed() {
        assert_eq!(
            zipf_demands(16, 6, 1.1, 9).unwrap(),
            zipf_demands(16, 6, 1.1, 9).unwrap()
        );
        assert_ne!(
            zipf_demands(16, 6, 1.1, 9).unwrap(),
            zipf_demands(16, 6, 1.1, 10).unwrap()
        );
        assert_eq!(hotspot(20, 4).unwrap(), hotspot(20, 4).unwrap());
    }

    #[test]
    fn key_generators_shape() {
        for keys in [
            uniform_keys(8, 3),
            sorted_keys(8),
            reverse_keys(8),
            duplicate_keys(8, 3, 1),
            zipf_keys(8, 50, 2),
        ] {
            assert_eq!(keys.len(), 8);
            assert!(keys.iter().all(|l| l.len() == 8));
            assert!(keys.iter().flatten().all(|&k| k < u64::MAX));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_keys(6, 9), uniform_keys(6, 9));
        assert_eq!(
            balanced_random(6, 9).unwrap(),
            balanced_random(6, 9).unwrap()
        );
    }
}
