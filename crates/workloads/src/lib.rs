//! # cc-workloads — instance generators for the experiments
//!
//! Routing workloads (Problem 3.1) and key distributions (Problem 4.1)
//! used by the test suite and the benchmark harness. All generators are
//! deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_core::routing::RoutingInstance;
use cc_core::CoreError;
use cc_rand::DetRng;

/// A fully loaded, perfectly balanced random instance: the demand matrix
/// is a sum of `n` random permutation matrices, so every node sends and
/// receives exactly `n` messages (the canonical Problem 3.1 shape).
///
/// # Errors
///
/// Never fails for `n ≥ 1`; the signature matches the other generators.
pub fn balanced_random(n: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut demands = vec![0u32; n * n];
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..n {
        rng.shuffle(&mut perm);
        for (i, &j) in perm.iter().enumerate() {
            demands[i * n + j] += 1;
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// The identity-shifted permutation workload: node `i` sends one message
/// to `(i + shift) mod n` — the lightest possible full-coverage load.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn permutation(n: usize, shift: usize) -> Result<RoutingInstance, CoreError> {
    RoutingInstance::from_demands(n, |i, j| u32::from((i + shift) % n == j))
}

/// The cyclic worst case for direct routing: all `n` messages of node `i`
/// target node `i+1`.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn cyclic_skew(n: usize) -> Result<RoutingInstance, CoreError> {
    RoutingInstance::from_demands(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 })
}

/// Block-local traffic: node `i` spreads its messages over its own
/// `√n`-block — stresses the within-set machinery.
///
/// # Errors
///
/// Never fails for `n ≥ 1`.
pub fn block_skew(n: usize) -> Result<RoutingInstance, CoreError> {
    let s = cc_sim::util::isqrt(n).max(1);
    RoutingInstance::from_demands(n, |i, j| {
        if i / s == j / s {
            (n / s.min(n)) as u32
        } else {
            0
        }
    })
}

/// A sparse random instance: each node sends `load ≤ n` messages to
/// uniformly random distinct-ish destinations, with receive caps enforced
/// by rejection.
///
/// # Errors
///
/// Never fails for `n ≥ 1` and `load ≤ n`.
pub fn sparse_random(n: usize, load: usize, seed: u64) -> Result<RoutingInstance, CoreError> {
    assert!(load <= n, "load must be at most n");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut demands = vec![0u32; n * n];
    let mut receive = vec![0usize; n];
    for i in 0..n {
        let mut placed = 0;
        let mut guard = 0;
        while placed < load && guard < 64 * n {
            let j = rng.gen_range_usize(0..n);
            guard += 1;
            if receive[j] < n {
                demands[i * n + j] += 1;
                receive[j] += 1;
                placed += 1;
            }
        }
    }
    RoutingInstance::from_demands(n, |i, j| demands[i * n + j])
}

/// Uniform random keys, `n` per node.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range_u64(0..u64::MAX - 1)).collect())
        .collect()
}

/// Globally pre-sorted keys (node `i` already holds its final batch).
pub fn sorted_keys(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| (0..n).map(|j| (i * n + j) as u64).collect())
        .collect()
}

/// Globally reverse-sorted keys.
pub fn reverse_keys(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| (0..n).map(|j| (n * n - i * n - j) as u64).collect())
        .collect()
}

/// Heavy duplication: only `distinct` different values exist.
pub fn duplicate_keys(n: usize, distinct: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| rng.gen_range_u64(0..distinct.max(1)))
                .collect()
        })
        .collect()
}

/// Zipf-flavoured skewed values (rank `r` drawn with weight `∝ 1/(r+1)`).
pub fn zipf_keys(n: usize, universe: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = DetRng::seed_from_u64(seed);
    let harmonic: f64 = (1..=universe).map(|r| 1.0 / r as f64).sum();
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| {
                    let target = rng.gen_range_f64(0.0..harmonic);
                    let mut acc = 0.0;
                    for r in 1..=universe {
                        acc += 1.0 / r as f64;
                        if acc >= target {
                            return r - 1;
                        }
                    }
                    universe - 1
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_random_is_fully_loaded() {
        let inst = balanced_random(12, 5).unwrap();
        for v in 0..12 {
            assert_eq!(inst.sends(v).len(), 12);
        }
        let recv = inst.expected_receives();
        assert!(recv.iter().all(|r| r.len() == 12));
    }

    #[test]
    fn generators_validate() {
        assert!(permutation(7, 3).is_ok());
        assert!(cyclic_skew(9).is_ok());
        assert!(block_skew(16).is_ok());
        assert!(sparse_random(10, 4, 1).is_ok());
    }

    #[test]
    fn key_generators_shape() {
        for keys in [
            uniform_keys(8, 3),
            sorted_keys(8),
            reverse_keys(8),
            duplicate_keys(8, 3, 1),
            zipf_keys(8, 50, 2),
        ] {
            assert_eq!(keys.len(), 8);
            assert!(keys.iter().all(|l| l.len() == 8));
            assert!(keys.iter().flatten().all(|&k| k < u64::MAX));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_keys(6, 9), uniform_keys(6, 9));
        assert_eq!(
            balanced_random(6, 9).unwrap(),
            balanced_random(6, 9).unwrap()
        );
    }
}
