//! Concurrent-parity contract of the query server: the same shuffled
//! request set, served through a 1-shard and a 4-shard [`QueryServer`]
//! from 8 client threads, must yield per-request results **bit-identical**
//! to sequential [`CliqueService`] execution — including error-carrying
//! requests mid-stream. Sharding, queue coalescing and thread
//! interleaving must be invisible in the answers; only throughput may
//! differ. This is the acceptance test of the `cc-server` subsystem.

use std::collections::HashMap;

use cc_rand::DetRng;
use congested_clique::server::{QueryResult, Request, ServerConfig};
use congested_clique::{workloads, CliqueService, QueryServer, ServerError};

/// The mixed workload: all seven entry points over three clique sizes,
/// plus requests that fail at validation (bad rank, sentinel keys, a
/// census whose domain outgrows the clique) and one that cannot even
/// construct its service (`n == 0`). 64 requests, deterministically
/// shuffled.
fn mixed_requests() -> Vec<Request> {
    let mut requests = Vec::new();
    for wave in 0..2u64 {
        for &n in &[8usize, 9, 16] {
            let balanced = workloads::balanced_random(n, 42 + wave).unwrap();
            let skewed = workloads::zipf_demands(n, n / 2, 1.2, 5 + wave).unwrap();
            let hot = workloads::hotspot(n, wave).unwrap();
            let keys = workloads::duplicate_keys(n, 5, 9 + wave);
            let zipf = workloads::zipf_keys(n, 40, 3 + wave);
            requests.push(Request::Route(balanced.clone()));
            requests.push(Request::RouteOptimized(balanced));
            requests.push(Request::Route(skewed));
            requests.push(Request::RouteOptimized(hot));
            requests.push(Request::Sort(keys.clone()));
            requests.push(Request::GlobalIndices(zipf.clone()));
            requests.push(Request::Select {
                keys: keys.clone(),
                rank: (n * n / 3) as u64,
            });
            requests.push(Request::Mode(zipf));
            // Error-carrying requests, mid-stream by construction:
            requests.push(Request::Select {
                keys: keys.clone(),
                rank: u64::MAX,
            });
            requests.push(Request::SmallKeyCensus {
                keys: keys.clone(),
                key_bits: 1,
            });
        }
    }
    // A census large enough to actually run (2 values × ⌈log₂129⌉² = 128).
    let census_keys: Vec<Vec<u64>> = (0..128)
        .map(|v| (0..64).map(|i| ((v + i) % 2) as u64).collect())
        .collect();
    requests.push(Request::SmallKeyCensus {
        keys: census_keys,
        key_bits: 1,
    });
    requests.push(Request::Sort(vec![vec![u64::MAX]; 9]));
    requests.push(Request::Sort(Vec::new())); // n == 0: service construction fails
    requests.push(Request::Mode(vec![vec![7]; 4]));
    assert_eq!(requests.len(), 64);
    let mut rng = DetRng::seed_from_u64(2013);
    rng.shuffle(&mut requests);
    requests
}

/// The sequential reference: one warm `CliqueService` per clique size
/// (exactly the shard-side layout, minus threads and queues), every
/// request served in submission order.
fn sequential_reference(requests: &[Request]) -> Vec<QueryResult> {
    let mut services: HashMap<usize, CliqueService> = HashMap::new();
    requests
        .iter()
        .map(|request| {
            let n = request.n();
            let service = match services.entry(n) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(CliqueService::new(n)?)
                }
            };
            request.serve_on(service)
        })
        .collect()
}

/// Serves `requests` through `server` from 8 concurrent client threads
/// (thread `t` takes requests `t, t+8, t+16, …`), returning results in
/// request order.
fn serve_concurrently(server: &QueryServer, requests: &[Request]) -> Vec<QueryResult> {
    const CLIENTS: usize = 8;
    let mut results: Vec<Option<QueryResult>> = Vec::new();
    results.resize_with(requests.len(), || None);
    let answers: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let client = server.handle();
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for index in (t..requests.len()).step_by(CLIENTS) {
                        let result = match client.call(requests[index].clone()) {
                            Ok(outcome) => Ok(outcome),
                            Err(ServerError::Query(e)) => Err(e),
                            Err(other) => panic!("server-level failure: {other}"),
                        };
                        mine.push((index, result));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (index, result) in answers {
        results[index] = Some(result);
    }
    results.into_iter().map(Option::unwrap).collect()
}

#[test]
fn sharded_concurrent_serving_is_bit_identical_to_sequential() {
    let requests = mixed_requests();
    let reference = sequential_reference(&requests);
    // Sanity on the workload itself: successes and failures are mixed.
    let failures = reference.iter().filter(|r| r.is_err()).count();
    assert!(failures >= 6, "want error-carrying requests mid-stream");
    assert!(
        reference.len() - failures >= 50,
        "want plenty of successes too"
    );

    for shards in [1usize, 4] {
        let server = QueryServer::new(
            ServerConfig::new(shards)
                .with_queue_capacity(16)
                .with_coalesce_limit(8),
        )
        .unwrap();
        let served = serve_concurrently(&server, &requests);
        for (index, (got, want)) in served.iter().zip(&reference).enumerate() {
            assert_eq!(
                got,
                want,
                "{shards}-shard server diverged on request {index} ({:?} n={})",
                std::mem::discriminant(&requests[index]),
                requests[index].n()
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests(), requests.len() as u64);
        assert_eq!(stats.rejected(), failures as u64);
        assert!(stats.batches() > 0);
        // Queues are quiescent after a graceful shutdown.
        assert!(stats.shards.iter().all(|s| s.queue_depth == 0));
    }
}

/// The same contract under `try_call` clients that retry on overload: a
/// tiny queue forces `Overloaded` rejections, and retried requests still
/// come back bit-identical.
#[test]
fn overload_retries_do_not_perturb_answers() {
    let requests: Vec<Request> = mixed_requests().into_iter().take(24).collect();
    let reference = sequential_reference(&requests);
    let server = QueryServer::new(
        ServerConfig::new(2)
            .with_queue_capacity(1)
            .with_coalesce_limit(4),
    )
    .unwrap();
    let served: Vec<QueryResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let client = server.handle();
                let requests = &requests;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for index in (t..requests.len()).step_by(4) {
                        let result = loop {
                            match client.try_call(requests[index].clone()) {
                                Ok(outcome) => break Ok(outcome),
                                Err(ServerError::Query(e)) => break Err(e),
                                Err(ServerError::Overloaded) => std::thread::yield_now(),
                                Err(other) => panic!("server-level failure: {other}"),
                            }
                        };
                        mine.push((index, result));
                    }
                    mine
                })
            })
            .collect();
        let mut results: Vec<Option<QueryResult>> = Vec::new();
        results.resize_with(requests.len(), || None);
        for handle in handles {
            for (index, result) in handle.join().expect("client thread") {
                results[index] = Some(result);
            }
        }
        results.into_iter().map(Option::unwrap).collect()
    });
    assert_eq!(served, reference);
    let stats = server.shutdown();
    assert_eq!(stats.requests(), requests.len() as u64);
}
