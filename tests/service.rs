//! Service-vs-facade parity: every query answered by a persistent
//! [`CliqueService`] must be *identical* — outputs and metrics — to the
//! stateless [`CongestedClique`] answer, for every protocol entry point,
//! including after failed queries and across interleaved protocols. This
//! is the end-to-end face of the session layer's bit-identical contract.

use congested_clique::{workloads, CliqueService, CongestedClique};

fn keys_for(n: usize) -> Vec<Vec<u64>> {
    workloads::duplicate_keys(n, 5, 9)
}

/// One service instance answers a mixed stream twice over; each answer is
/// compared against a fresh facade call.
#[test]
fn every_entry_point_matches_the_stateless_facade() {
    let n = 16;
    let clique = CongestedClique::new(n).unwrap();
    let mut service = CliqueService::new(n).unwrap();
    let inst = workloads::balanced_random(n, 42).unwrap();
    let keys = keys_for(n);

    for pass in 0..2 {
        let routed = service.route(&inst).unwrap();
        let routed_ref = clique.route(&inst).unwrap();
        assert_eq!(routed.delivered, routed_ref.delivered, "pass {pass}");
        assert_eq!(routed.metrics, routed_ref.metrics, "pass {pass}");

        let opt = service.route_optimized(&inst).unwrap();
        let opt_ref = clique.route_optimized(&inst).unwrap();
        assert_eq!(opt.delivered, opt_ref.delivered, "pass {pass}");
        assert_eq!(opt.metrics, opt_ref.metrics, "pass {pass}");

        let sorted = service.sort(&keys).unwrap();
        let sorted_ref = clique.sort(&keys).unwrap();
        assert_eq!(sorted.batches, sorted_ref.batches, "pass {pass}");
        assert_eq!(sorted.offsets, sorted_ref.offsets, "pass {pass}");
        assert_eq!(sorted.metrics, sorted_ref.metrics, "pass {pass}");

        let idx = service.global_indices(&keys).unwrap();
        let idx_ref = clique.global_indices(&keys).unwrap();
        assert_eq!(idx.indices, idx_ref.indices, "pass {pass}");
        assert_eq!(idx.metrics, idx_ref.metrics, "pass {pass}");

        let rank = (n * n / 3) as u64;
        let sel = service.select(&keys, rank).unwrap();
        let sel_ref = clique.select(&keys, rank).unwrap();
        assert_eq!(sel.key, sel_ref.key, "pass {pass}");
        assert_eq!(sel.metrics, sel_ref.metrics, "pass {pass}");

        let mode = service.mode(&keys).unwrap();
        let mode_ref = clique.mode(&keys).unwrap();
        assert_eq!((mode.key, mode.count), (mode_ref.key, mode_ref.count));
        assert_eq!(mode.metrics, mode_ref.metrics, "pass {pass}");
    }

    // Census needs a larger clique relative to the key domain.
    let nc = 128;
    let mut census_service = CliqueService::new(nc).unwrap();
    let census_clique = CongestedClique::new(nc).unwrap();
    let census_keys: Vec<Vec<u64>> = (0..nc)
        .map(|v| (0..nc / 2).map(|i| ((v + i) % 2) as u64).collect())
        .collect();
    for _ in 0..2 {
        let census = census_service.small_key_census(&census_keys, 1).unwrap();
        let census_ref = census_clique.small_key_census(&census_keys, 1).unwrap();
        assert_eq!(census.totals, census_ref.totals);
        assert_eq!(census.prefix, census_ref.prefix);
        assert_eq!(census.metrics, census_ref.metrics);
    }

    assert_eq!(service.stats().completed(), 12);
    assert_eq!(census_service.stats().completed(), 2);
}

/// A failed query (invalid rank) must leave the service answering later
/// queries identically to the facade.
#[test]
fn failed_queries_do_not_perturb_later_answers() {
    let n = 9;
    let clique = CongestedClique::new(n).unwrap();
    let mut service = CliqueService::new(n).unwrap();
    let keys = keys_for(n);

    let before = service.sort(&keys).unwrap();
    // Out-of-range rank: rejected before any simulation.
    assert!(service.select(&keys, u64::MAX).is_err());
    // Reserved-sentinel keys: rejected by validation.
    assert!(service.sort(&vec![vec![u64::MAX]; 9]).is_err());
    let after = service.sort(&keys).unwrap();
    let reference = clique.sort(&keys).unwrap();
    assert_eq!(before.batches, after.batches);
    assert_eq!(after.batches, reference.batches);
    assert_eq!(after.metrics, reference.metrics);
}
