//! The C10k acceptance test: two reactor event-loop threads serve 4096
//! concurrent connections — 4080 idle, 16 actively pipelining mixed
//! clique sizes — with every reply bit-identical to sequential
//! [`CliqueService`] execution, and the process's OS thread count stays
//! reactors + shards + constant: adding thousands of sockets adds
//! **zero** threads.
//!
//! The idle majority is the point, not decoration: under edge-triggered
//! epoll every one of those sockets is registered once and then never
//! touched again — no per-iteration rebuild, no per-iteration scan — so
//! the active minority is served as if the idle crowd were not there.
//! (Under `CC_REACTOR=poll` the same test passes, just across the O(n)
//! scan the epoll backend exists to remove.)
//!
//! This file holds exactly one test on purpose: the `/proc` thread-count
//! assertions require that nothing else spawns threads in this process
//! while they measure.

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use congested_clique::server::QueryResult;
use congested_clique::{
    CcClient, CliqueService, NetServer, NetServerConfig, ReactorBackend, Request, ServerConfig,
    ServerError,
};

const TOTAL_CONNS: usize = 4096;
const ACTIVE: usize = 16;
const ROUNDS: usize = 8;
const REACTORS: usize = 2;

/// Idle sockets connected per batch — safely under the listener's accept
/// backlog, so a connect never times out waiting behind thousands of
/// unaccepted neighbours.
const CONNECT_BATCH: usize = 128;

/// The process's OS thread count per `/proc/self/status`; `None` where
/// procfs is unavailable (the parity half of the test still runs).
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Blocks until the server has accepted `want` connections (acceptance
/// is asynchronous to `connect` returning).
fn wait_for_connections(server: &NetServer, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().connections < want {
        assert!(
            Instant::now() < deadline,
            "only {} of {want} connections accepted",
            server.stats().connections
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn reactors_serve_4096_connections_without_extra_threads() {
    let shards = 2usize;
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(shards)
            .with_fleet(
                ServerConfig::new(shards)
                    .with_queue_capacity(32)
                    .with_coalesce_limit(8),
            )
            .with_reactor_backend(ReactorBackend::Epoll)
            .with_reactor_threads(REACTORS),
    )
    .expect("bind");
    let addr = server.local_addr();
    assert_eq!(server.stats().reactors, REACTORS);
    let after_bind = os_threads();

    // The active minority: full protocol clients, all driven from this
    // one test thread via the submit/wait_next split API.
    let mut clients: Vec<CcClient> = (0..ACTIVE)
        .map(|_| CcClient::connect(addr).expect("connect"))
        .collect();
    wait_for_connections(&server, ACTIVE as u64);
    let with_active = os_threads();

    // The idle majority: accepted, counted, never speaking. Connected in
    // backlog-sized batches, waiting for the acceptor between batches.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(TOTAL_CONNS - ACTIVE);
    while idle.len() < TOTAL_CONNS - ACTIVE {
        let batch = CONNECT_BATCH.min(TOTAL_CONNS - ACTIVE - idle.len());
        for _ in 0..batch {
            idle.push(TcpStream::connect(addr).expect("idle connect"));
        }
        wait_for_connections(&server, (ACTIVE + idle.len()) as u64);
    }
    let with_idle = os_threads();

    // Thread count is reactors + shards + constant, not O(connections):
    // neither the 16 active clients nor the 4080 idle sockets spawned a
    // single server thread.
    if let (Some(bind), Some(active), Some(idle_count)) = (after_bind, with_active, with_idle) {
        assert_eq!(bind, active, "active connections spawned threads");
        assert_eq!(active, idle_count, "idle connections spawned threads");
    }

    // Mixed clique sizes land on different shards, so replies genuinely
    // complete out of order across the fleet.
    let sizes = [8usize, 9, 16];
    let requests: Vec<Request> = (0..ACTIVE * ROUNDS)
        .map(|i| {
            let n = sizes[i % sizes.len()];
            Request::Mode(
                (0..n)
                    .map(|v| vec![(v as u64 * 7 + i as u64) % 13])
                    .collect(),
            )
        })
        .collect();
    let mut services: HashMap<usize, CliqueService> = HashMap::new();
    let reference: Vec<QueryResult> = requests
        .iter()
        .map(|request| {
            let service = services
                .entry(request.n())
                .or_insert_with(|| CliqueService::new(request.n()).expect("service"));
            request.serve_on(service)
        })
        .collect();

    // One round per client per iteration: submit everywhere, then drain
    // everywhere — 16 connections concurrently in flight, one test
    // thread, 4080 idle sockets looking on.
    let mut got: Vec<Option<QueryResult>> = Vec::new();
    got.resize_with(requests.len(), || None);
    let mut submitted: Vec<Vec<usize>> = vec![Vec::new(); ACTIVE];
    for round in 0..ROUNDS {
        for (c, client) in clients.iter_mut().enumerate() {
            let index = round * ACTIVE + c;
            let id = client.submit(&requests[index]).expect("submit");
            assert_eq!(id as usize, submitted[c].len(), "ids count up per client");
            submitted[c].push(index);
        }
        for (c, client) in clients.iter_mut().enumerate() {
            while client.pending() > 0 {
                let (id, result) = client.wait_next().expect("wait").expect("reply owed");
                let index = submitted[c][id as usize];
                let result = result.map_err(|e| match e {
                    ServerError::Query(e) => e,
                    other => panic!("server-level failure: {other}"),
                });
                assert!(got[index].replace(result).is_none(), "duplicate reply");
            }
        }
    }

    // Bit-parity of all 128 answers with sequential execution.
    for (index, (got, want)) in got.iter().zip(&reference).enumerate() {
        let got = got.as_ref().expect("answered");
        assert_eq!(got, want, "request {index} diverged");
    }

    drop(idle);
    drop(clients);
    let stats = server.shutdown();
    assert_eq!(stats.connections, TOTAL_CONNS as u64);
    assert_eq!(stats.frames_in, requests.len() as u64);
    assert_eq!(stats.frames_out, requests.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.idle_teardowns, 0);
    assert_eq!(stats.reactors, REACTORS);
    assert_eq!(stats.fleet.requests(), requests.len() as u64);
}
