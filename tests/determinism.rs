//! Parallel-vs-sequential determinism for the paper's algorithms: the
//! Theorem 5.4 router, the Algorithm 3 subset sorter and the Theorem 4.5
//! full sorter must produce byte-identical outputs, round counts, total
//! bits and max-edge-bits under every execution mode, on seeded
//! workloads.

use congested_clique::core::routing::{route_optimized_with_spec, spec_for_optimized};
use congested_clique::core::sorting::{
    sort_with_spec, spec_for_sorting, SubsetSort, SubsetSortOutput, TaggedKey,
};
use congested_clique::primitives::{drive, NodeGroup};
use congested_clique::sim::{run_protocol, CliqueSpec, CommonScope, ExecMode, Metrics};
use congested_clique::workloads;

fn modes() -> Vec<ExecMode> {
    vec![
        ExecMode::SeedReference,
        ExecMode::Sequential,
        ExecMode::Auto,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 0 },
        ExecMode::SpawnParallel { threads: 2 },
    ]
}

fn assert_metrics_identical(label: &str, first: &Metrics, other: &Metrics) {
    assert_eq!(first.comm_rounds(), other.comm_rounds(), "{label}: rounds");
    assert_eq!(first.total_bits(), other.total_bits(), "{label}: bits");
    assert_eq!(
        first.max_edge_bits(),
        other.max_edge_bits(),
        "{label}: max edge bits"
    );
    assert_eq!(first, other, "{label}: full metrics");
}

#[test]
fn theorem_5_4_router_is_mode_deterministic() {
    for (n, seed) in [(49usize, 11u64), (64, 42)] {
        let inst = workloads::balanced_random(n, seed).unwrap();
        let runs: Vec<_> = modes()
            .into_iter()
            .map(|mode| {
                route_optimized_with_spec(&inst, spec_for_optimized(n).with_exec(mode)).unwrap()
            })
            .collect();
        let first = &runs[0];
        assert_eq!(first.metrics.comm_rounds(), 12, "n={n}");
        for run in &runs[1..] {
            assert_eq!(first.delivered, run.delivered, "n={n} seed={seed}");
            assert_metrics_identical("router", &first.metrics, &run.metrics);
        }
    }
}

#[test]
fn theorem_4_5_sorter_is_mode_deterministic() {
    for (n, seed) in [(36usize, 5u64), (49, 7)] {
        let keys = workloads::uniform_keys(n, seed);
        let runs: Vec<_> = modes()
            .into_iter()
            .map(|mode| sort_with_spec(&keys, spec_for_sorting(n).with_exec(mode)).unwrap())
            .collect();
        let first = &runs[0];
        assert_eq!(first.metrics.comm_rounds(), 37, "n={n}");
        for run in &runs[1..] {
            assert_eq!(first.batches, run.batches, "n={n}");
            assert_eq!(first.offsets, run.offsets, "n={n}");
            assert_metrics_identical("sorter", &first.metrics, &run.metrics);
        }
    }
}

#[test]
fn subset_sorter_is_mode_deterministic() {
    let n = 25;
    let group = NodeGroup::contiguous(0, 5);
    let keys_of = |local: usize| -> Vec<u64> {
        (0..2 * n)
            .map(|i| ((local * 37 + i * 101) % 997) as u64)
            .collect()
    };
    let runs: Vec<(Vec<SubsetSortOutput>, Metrics)> = modes()
        .into_iter()
        .map(|mode| {
            let report = run_protocol(
                CliqueSpec::new(n)
                    .unwrap()
                    .with_budget_words(256)
                    .with_exec(mode),
                |me| {
                    if let Some(local) = group.local_index(me) {
                        let keys: Vec<TaggedKey> = keys_of(local)
                            .into_iter()
                            .enumerate()
                            .map(|(i, k)| TaggedKey::new(k, me, i as u32))
                            .collect();
                        drive(SubsetSort::member(
                            group.clone(),
                            local,
                            keys,
                            2 * n,
                            false,
                            CommonScope::new("determinism.a3", 0),
                        ))
                    } else {
                        drive(SubsetSort::relay_only(false))
                    }
                },
            )
            .unwrap();
            (report.outputs, report.metrics)
        })
        .collect();
    let (first_out, first_metrics) = &runs[0];
    for (out, metrics) in &runs[1..] {
        assert_eq!(first_out, out);
        assert_metrics_identical("subset sorter", first_metrics, metrics);
    }
    // Sanity: the members really sorted their multiset.
    let held: Vec<u64> = group
        .iter()
        .flat_map(|v| first_out[v.index()].held.iter().map(|k| k.key))
        .collect();
    let mut expected: Vec<u64> = (0..5).flat_map(keys_of).collect();
    expected.sort_unstable();
    assert_eq!(held, expected);
}
