//! Cross-crate integration tests: the full paper pipeline exercised
//! through the facade, with all contenders on shared workloads.

use congested_clique::baselines;
use congested_clique::core::routing::{route_deterministic, route_optimized};
use congested_clique::core::sorting::sort_keys;
use congested_clique::{workloads, CongestedClique};

#[test]
fn routing_all_algorithms_agree_on_deliveries() {
    let n = 25;
    let inst = workloads::balanced_random(n, 77).unwrap();
    let det = route_deterministic(&inst).unwrap();
    let opt = route_optimized(&inst).unwrap();
    let rnd = baselines::route_randomized(&inst, 5).unwrap();
    // All three verified internally; deliveries must be identical multisets.
    assert_eq!(det.delivered, opt.delivered);
    assert_eq!(det.delivered, rnd.delivered);
    assert_eq!(det.metrics.comm_rounds(), 16);
    assert_eq!(opt.metrics.comm_rounds(), 12);
}

#[test]
fn round_bounds_hold_across_sizes_and_workloads() {
    for n in [9usize, 12, 16, 20, 30] {
        for inst in [
            workloads::balanced_random(n, 3).unwrap(),
            workloads::cyclic_skew(n).unwrap(),
            workloads::permutation(n, 1).unwrap(),
        ] {
            let det = route_deterministic(&inst).unwrap();
            assert!(det.metrics.comm_rounds() <= 16, "n={n}");
            let opt = route_optimized(&inst).unwrap();
            assert!(opt.metrics.comm_rounds() <= 12, "n={n}");
        }
    }
}

#[test]
fn sorting_matches_std_sort_on_every_distribution() {
    let n = 16;
    for keys in [
        workloads::uniform_keys(n, 4),
        workloads::sorted_keys(n),
        workloads::reverse_keys(n),
        workloads::duplicate_keys(n, 3, 4),
        workloads::zipf_keys(n, 100, 4),
    ] {
        let out = sort_keys(&keys).unwrap(); // internally verified
        assert!(out.metrics.comm_rounds() <= 37);
        let flat: Vec<u64> = out.batches.iter().flatten().map(|k| k.key).collect();
        let mut expected: Vec<u64> = keys.iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(flat, expected);
    }
}

#[test]
fn facade_selection_agrees_with_sort() {
    let n = 16;
    let clique = CongestedClique::new(n).unwrap();
    let keys = workloads::uniform_keys(n, 8);
    let mut all: Vec<u64> = keys.iter().flatten().copied().collect();
    all.sort_unstable();
    for rank in [0u64, 17, (all.len() / 2) as u64, (all.len() - 1) as u64] {
        let sel = clique.select(&keys, rank).unwrap();
        assert_eq!(sel.key, all[rank as usize], "rank {rank}");
    }
}

#[test]
fn mode_and_census_agree() {
    // For 1-bit keys, the §6.3 census and the sorting-based mode must
    // find the same multiplicities.
    let n = 128;
    let keys: Vec<Vec<u64>> = (0..n).map(|v| vec![(v % 2) as u64; (v * 3) % n]).collect();
    let clique = CongestedClique::new(n).unwrap();
    let census = clique.small_key_census(&keys, 1).unwrap();
    let mode = clique.mode(&keys).unwrap();
    assert_eq!(census.totals[mode.key as usize], mode.count);
    assert_eq!(census.metrics.comm_rounds(), 2);
}

#[test]
fn deterministic_runs_are_bit_identical() {
    let n = 16;
    let inst = workloads::balanced_random(n, 9).unwrap();
    let a = route_deterministic(&inst).unwrap();
    let b = route_deterministic(&inst).unwrap();
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.metrics.total_bits(), b.metrics.total_bits());
    assert_eq!(a.metrics.max_edge_bits(), b.metrics.max_edge_bits());
}

#[test]
fn per_edge_budget_is_logarithmic() {
    // The max observed edge load must stay within the declared
    // constant × ⌈log₂ n⌉ budget as n grows.
    for n in [16usize, 36, 64, 100] {
        let inst = workloads::balanced_random(n, 1).unwrap();
        let out = route_deterministic(&inst).unwrap();
        let word = congested_clique::sim::util::word_bits(n);
        assert!(
            out.metrics.max_edge_bits() <= 64 * word,
            "n={n}: {} bits vs budget {}",
            out.metrics.max_edge_bits(),
            64 * word
        );
    }
}
