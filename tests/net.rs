//! Network-parity contract of the `cc-net` layer: a multi-threaded
//! [`CcClient`] swarm pushing ≥ 64 mixed requests (all seven entry
//! points, errors mid-stream, pipelined with out-of-order completion)
//! through a loopback [`NetServer`] on 1- and 4-shard fleets must yield
//! results **bit-identical** to sequential [`CliqueService`] execution —
//! the TCP hop, the codec, the per-connection multiplexing and the shard
//! interleaving all invisible in the answers. Plus: malformed frames are
//! rejected deterministically without hurting other connections, and
//! shutdown drains every queued reply before closing sockets.

use std::collections::HashMap;
use std::net::TcpStream;

use cc_rand::DetRng;
use congested_clique::net::codec::{self, Frame};
use congested_clique::net::frame;
use congested_clique::server::QueryResult;
use congested_clique::workloads::RequestMix;
use congested_clique::{
    CcClient, CliqueService, NetError, NetServer, NetServerConfig, Request, ServerConfig,
    ServerError, ServingMode, WireError,
};

/// The mixed workload: 58 generated requests over three clique sizes
/// (census requests error on all of them — deliberate mid-stream error
/// traffic) plus handcrafted edge cases, deterministically shuffled.
fn mixed_requests() -> Vec<Request> {
    let mut requests = RequestMix::new(vec![8usize, 9, 16])
        .with_zipf_theta(0.8)
        .generate(58, 2013);
    let keys9: Vec<Vec<u64>> = (0..9).map(|i| vec![i as u64, 7]).collect();
    requests.push(Request::Select {
        keys: keys9.clone(),
        rank: u64::MAX,
    }); // out-of-range rank: query error
    requests.push(Request::Sort(Vec::new())); // n == 0: construction error
    requests.push(Request::Sort(vec![vec![u64::MAX]; 9])); // sentinel key
    requests.push(Request::Mode(vec![vec![7]; 4])); // size outside the mix

    // A census large enough to actually succeed (2 values × ⌈log₂129⌉² = 128).
    let census_keys: Vec<Vec<u64>> = (0..128)
        .map(|v| (0..64).map(|i| ((v + i) % 2) as u64).collect())
        .collect();
    requests.push(Request::SmallKeyCensus {
        keys: census_keys,
        key_bits: 1,
    });
    requests.push(Request::GlobalIndices(keys9));
    assert!(requests.len() >= 64, "want at least 64 requests");
    let mut rng = DetRng::seed_from_u64(97);
    rng.shuffle(&mut requests);
    requests
}

/// The sequential reference: one warm `CliqueService` per clique size,
/// every request served in submission order (same as `tests/server.rs`).
fn sequential_reference(requests: &[Request]) -> Vec<QueryResult> {
    let mut services: HashMap<usize, CliqueService> = HashMap::new();
    requests
        .iter()
        .map(|request| {
            let n = request.n();
            let service = match services.entry(n) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(CliqueService::new(n)?)
                }
            };
            request.serve_on(service)
        })
        .collect()
}

/// 8 concurrent `CcClient`s (one TCP connection each), each pipelining
/// its strided share in chunks of 5 — chunks mix clique sizes, so on a
/// multi-shard fleet replies genuinely complete out of order and the
/// request-id correlation is what restores request order.
fn serve_over_tcp(server: &NetServer, requests: &[Request]) -> Vec<QueryResult> {
    const CLIENTS: usize = 8;
    const CHUNK: usize = 5;
    let addr = server.local_addr();
    let answers: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = CcClient::connect(addr).expect("connect");
                    let mine: Vec<usize> = (t..requests.len()).step_by(CLIENTS).collect();
                    let mut results = Vec::with_capacity(mine.len());
                    for chunk in mine.chunks(CHUNK) {
                        let batch: Vec<Request> =
                            chunk.iter().map(|&i| requests[i].clone()).collect();
                        let replies = client.pipeline(&batch).expect("pipeline");
                        for (&index, reply) in chunk.iter().zip(replies) {
                            let result = match reply {
                                Ok(outcome) => Ok(outcome),
                                Err(ServerError::Query(e)) => Err(e),
                                Err(other) => panic!("server-level failure: {other}"),
                            };
                            results.push((index, result));
                        }
                    }
                    results
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let mut results: Vec<Option<QueryResult>> = Vec::new();
    results.resize_with(requests.len(), || None);
    for (index, result) in answers {
        results[index] = Some(result);
    }
    results.into_iter().map(Option::unwrap).collect()
}

#[test]
fn tcp_swarm_is_bit_identical_to_sequential_service() {
    let requests = mixed_requests();
    let reference = sequential_reference(&requests);
    let failures = reference.iter().filter(|r| r.is_err()).count();
    assert!(failures >= 6, "want error-carrying requests mid-stream");
    assert!(
        reference.len() - failures >= 40,
        "want plenty of successes too"
    );

    // Both serving cores, same wire contract: the event-driven reactor
    // (the default) and the thread-per-connection baseline must be
    // indistinguishable in answers *and* in wire telemetry.
    for mode in [ServingMode::Reactor, ServingMode::ThreadPerConnection] {
        for shards in [1usize, 4] {
            let server = NetServer::bind(
                "127.0.0.1:0",
                NetServerConfig::new(shards)
                    .with_serving_mode(mode)
                    .with_fleet(
                        ServerConfig::new(shards)
                            .with_queue_capacity(16)
                            .with_coalesce_limit(8),
                    ),
            )
            .expect("bind");
            let served = serve_over_tcp(&server, &requests);
            for (index, (got, want)) in served.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got,
                    want,
                    "{shards}-shard {mode:?} TCP server diverged on request {index} ({:?} n={})",
                    std::mem::discriminant(&requests[index]),
                    requests[index].n()
                );
            }
            let stats = server.shutdown();
            assert_eq!(stats.connections, 8);
            assert_eq!(stats.frames_in, requests.len() as u64);
            assert_eq!(stats.frames_out, requests.len() as u64);
            assert_eq!(stats.protocol_errors, 0);
            assert_eq!(stats.idle_teardowns, 0);
            assert_eq!(stats.fleet.requests(), requests.len() as u64);
            assert!(stats.fleet.shards.iter().all(|s| s.queue_depth == 0));
        }
    }
}

/// Malformed input tears down only the offending connection, with a
/// deterministic protocol-error notice; well-behaved connections on the
/// same server are untouched.
#[test]
fn malformed_frames_are_rejected_deterministically() {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(1)).expect("bind");
    let addr = server.local_addr();

    // (a) Garbage payload: decodes to an unsupported version.
    let mut raw = TcpStream::connect(addr).unwrap();
    frame::write_frame(&mut raw, &[0xFF, 0xEE, 0xDD]).unwrap();
    let notice = frame::read_frame(&mut raw, 1 << 20)
        .unwrap()
        .expect("notice frame");
    match codec::decode_frame(&notice) {
        Ok(Frame::ProtocolError { error, .. }) => {
            assert_eq!(error, WireError::UnsupportedVersion { found: 0xFF });
        }
        other => panic!("expected protocol error notice, got {other:?}"),
    }
    // The connection is closed after the notice.
    assert!(frame::read_frame(&mut raw, 1 << 20).unwrap().is_none());

    // (b) A truncated request body (valid header, missing fields).
    let mut raw = TcpStream::connect(addr).unwrap();
    let valid = codec::encode_request(3, &Request::Mode(vec![vec![1], vec![2]]));
    frame::write_frame(&mut raw, &valid[..valid.len() - 2]).unwrap();
    let notice = frame::read_frame(&mut raw, 1 << 20)
        .unwrap()
        .expect("notice frame");
    match codec::decode_frame(&notice) {
        Ok(Frame::ProtocolError { id, error }) => {
            // The header parsed before the body failed, so the notice
            // names the offending request.
            assert_eq!(id, 3);
            assert_eq!(error, WireError::Truncated);
        }
        other => panic!("expected protocol error notice, got {other:?}"),
    }
    assert!(frame::read_frame(&mut raw, 1 << 20).unwrap().is_none());

    // (c) The client library surfaces the notice as RemoteProtocol: ship
    // a frame kind only servers may send.
    let mut client = CcClient::connect(addr).expect("connect");
    let mut raw = TcpStream::connect(addr).unwrap();
    frame::write_frame(
        &mut raw,
        &codec::encode_reply(5, &Err(ServerError::Overloaded)),
    )
    .unwrap();
    let notice = frame::read_frame(&mut raw, 1 << 20)
        .unwrap()
        .expect("notice frame");
    match codec::decode_frame(&notice) {
        Ok(Frame::ProtocolError { id, error }) => {
            // The notice echoes the offending frame's parsed request id.
            assert_eq!(id, 5);
            assert_eq!(
                error,
                WireError::Malformed {
                    reason: "clients may send only request frames".into()
                }
            );
        }
        other => panic!("expected protocol error notice, got {other:?}"),
    }

    // (d) The untouched client still gets correct service afterwards.
    let keys: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64]).collect();
    let outcome = client
        .call(&Request::Mode(keys.clone()))
        .expect("healthy call");
    let reference = Request::Mode(keys)
        .serve_on(&mut CliqueService::new(8).unwrap())
        .unwrap();
    assert_eq!(outcome, reference);

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 3);
    assert_eq!(stats.frames_in, 1);
}

/// Shutdown drains: requests already accepted by a connection's reader
/// are answered and written out before the socket closes. The bulk lands
/// on one shard; a marker request on a *different* shard proves (reader
/// is sequential) that every bulk request was accepted before shutdown
/// fires; the client must then still receive every bulk reply, then a
/// clean EOF.
#[test]
fn shutdown_drains_every_queued_reply_before_closing() {
    // 4 shards: n=16 and n=9 hash to different shards (asserted below via
    // distinct completion behavior being irrelevant — parity is what
    // matters); a deep queue keeps the bulk waiting.
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(4).with_fleet(
            ServerConfig::new(4)
                .with_queue_capacity(32)
                .with_coalesce_limit(4),
        ),
    )
    .expect("bind");
    let addr = server.local_addr();

    let bulk_keys: Vec<Vec<u64>> = (0..16)
        .map(|i| (0..16).map(|j| ((i * 5 + j) % 23) as u64).collect())
        .collect();
    let bulk = Request::Sort(bulk_keys);
    let marker = Request::Mode((0..9).map(|i| vec![i as u64]).collect());
    const BULK: u64 = 12;

    let mut reference_service = CliqueService::new(16).unwrap();
    let bulk_reference = bulk.serve_on(&mut reference_service).unwrap();
    let marker_reference = marker
        .serve_on(&mut CliqueService::new(9).unwrap())
        .unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    for id in 0..BULK {
        frame::write_frame(&mut stream, &codec::encode_request(id, &bulk)).unwrap();
    }
    frame::write_frame(&mut stream, &codec::encode_request(BULK, &marker)).unwrap();

    // Read until the marker's reply: at that point the sequential reader
    // has accepted all BULK requests (it submitted the marker after them).
    let mut received: Vec<(u64, codec::WireResult)> = Vec::new();
    loop {
        let payload = frame::read_frame(&mut stream, 1 << 26)
            .unwrap()
            .expect("reply before EOF");
        match codec::decode_frame(&payload).unwrap() {
            Frame::Reply { id, result } => {
                let is_marker = id == BULK;
                received.push((id, result));
                if is_marker {
                    break;
                }
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    // Shut down while bulk replies are (typically) still queued. The
    // contract: every accepted request's reply still arrives, then EOF.
    let shutdown = std::thread::spawn(move || server.shutdown());
    while received.len() < (BULK + 1) as usize {
        let payload = frame::read_frame(&mut stream, 1 << 26)
            .unwrap()
            .unwrap_or_else(|| panic!("EOF after only {} replies", received.len()));
        match codec::decode_frame(&payload).unwrap() {
            Frame::Reply { id, result } => received.push((id, result)),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(frame::read_frame(&mut stream, 1 << 26).unwrap().is_none());
    let stats = shutdown.join().expect("shutdown thread");
    assert_eq!(stats.frames_in, BULK + 1);
    assert_eq!(stats.frames_out, BULK + 1);
    assert_eq!(stats.fleet.requests(), BULK + 1);

    // Parity of every drained reply.
    for (id, result) in received {
        let outcome = result.expect("all requests succeed");
        if id == BULK {
            assert_eq!(outcome, marker_reference.clone());
        } else {
            assert_eq!(outcome, bulk_reference.clone());
        }
    }
}

/// A pipeline far deeper than the in-flight window (and than the shard
/// queue) completes correctly: the sliding window interleaves writes and
/// reads, so no buffer anywhere has to absorb the whole batch.
#[test]
fn deep_pipelines_slide_through_the_window() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(2).with_fleet(
            ServerConfig::new(2)
                .with_queue_capacity(4)
                .with_coalesce_limit(4),
        ),
    )
    .expect("bind");
    let mut client = CcClient::connect(server.local_addr()).expect("connect");
    let keys4: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64]).collect();
    let keys5: Vec<Vec<u64>> = (0..5).map(|i| vec![i as u64 * 3]).collect();
    let requests: Vec<Request> = (0..100)
        .map(|i| {
            if i % 2 == 0 {
                Request::Mode(keys4.clone())
            } else {
                Request::Mode(keys5.clone())
            }
        })
        .collect();
    let reference = sequential_reference(&requests);
    let results = client.pipeline(&requests).expect("deep pipeline");
    assert_eq!(results.len(), 100);
    for ((got, want), index) in results.iter().zip(&reference).zip(0..) {
        match (got, want) {
            (Ok(outcome), Ok(reference)) => assert_eq!(outcome, reference, "request {index}"),
            other => panic!("request {index}: {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.frames_in, 100);
    assert_eq!(stats.frames_out, 100);
}

/// A client that writes a whole burst before reading anything: the
/// server's per-connection in-flight gate throttles its reader instead
/// of buffering replies unboundedly, and once the client starts reading,
/// every reply arrives. (The burst exceeds `MAX_CONN_INFLIGHT`, so the
/// gate provably engages.)
#[test]
fn read_free_bursts_are_throttled_not_buffered() {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(1)).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let request = Request::Mode((0..4).map(|i| vec![i as u64]).collect());
    let reference = request
        .serve_on(&mut CliqueService::new(4).unwrap())
        .unwrap();
    const BURST: u64 = 100;
    assert!(BURST as usize > congested_clique::net::MAX_CONN_INFLIGHT);
    for id in 0..BURST {
        frame::write_frame(&mut stream, &codec::encode_request(id, &request)).unwrap();
    }
    let mut seen = vec![false; BURST as usize];
    for _ in 0..BURST {
        let payload = frame::read_frame(&mut stream, 1 << 20)
            .unwrap()
            .expect("reply before EOF");
        match codec::decode_frame(&payload).unwrap() {
            Frame::Reply { id, result } => {
                assert_eq!(result.unwrap(), reference, "request {id}");
                assert!(!seen[id as usize], "duplicate reply {id}");
                seen[id as usize] = true;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.frames_in, BURST);
    assert_eq!(stats.frames_out, BURST);
}

/// Late clients: connecting or calling after shutdown fails cleanly
/// rather than hanging, and the in-process handle agrees.
#[test]
fn post_shutdown_calls_fail_cleanly() {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(1)).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let keys: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64]).collect();
    let mut client = CcClient::connect(addr).expect("connect");
    assert!(client.call(&Request::Mode(keys.clone())).is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.frames_in, 1);
    // The existing connection is closed: the next call cannot complete.
    match client.call(&Request::Mode(keys.clone())) {
        Ok(outcome) => panic!("call after shutdown succeeded: {outcome:?}"),
        Err(NetError::Disconnected | NetError::Io(_)) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
    }
    // The in-process handle fails the same way the fleet always has.
    assert_eq!(
        handle.call(Request::Mode(keys)).unwrap_err(),
        ServerError::ShutDown
    );
}
