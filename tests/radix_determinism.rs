//! The radix scatter-key engine must be observationally invisible: for
//! every service entry point, every execution mode, and both settings of
//! the radix toggle, the run report (outputs and metrics) is bit-for-bit
//! identical. This is the determinism contract that lets `CC_RADIX=off`
//! serve as a drop-in escape hatch and the comparison sort act as a live
//! oracle.
//!
//! The toggle is process-global; flipping it while other tests run is
//! safe precisely because both settings are stable sorts producing
//! identical results — which is what these tests assert.

use congested_clique::core::routing::{
    route_optimized_with_spec, route_with_spec, spec_for_optimized, spec_for_routing,
};
use congested_clique::core::sorting::{
    global_indices_with_spec, mode_query_with_spec, select_rank_with_spec,
    small_key_census_with_spec, sort_with_spec, spec_for_census, spec_for_sorting,
};
use congested_clique::sim::radix::set_radix_enabled;
use congested_clique::sim::{ExecMode, Metrics};
use congested_clique::workloads;

fn modes() -> Vec<ExecMode> {
    vec![
        ExecMode::SeedReference,
        ExecMode::Sequential,
        ExecMode::Auto,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 0 },
        ExecMode::SpawnParallel { threads: 2 },
    ]
}

/// Runs `f` under every (exec mode, radix on/off) combination and asserts
/// every result equals the first (SeedReference with radix on).
fn assert_invariant_across_matrix<T, F>(label: &str, f: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(ExecMode) -> T,
{
    let mut first: Option<T> = None;
    for radix_on in [true, false] {
        set_radix_enabled(radix_on);
        for mode in modes() {
            let run = f(mode);
            match &first {
                None => first = Some(run),
                Some(expected) => {
                    assert_eq!(
                        *expected, run,
                        "{label}: mode {mode:?}, radix {radix_on} diverged"
                    );
                }
            }
        }
    }
    set_radix_enabled(true);
}

fn assert_metrics_identical(label: &str, first: &Metrics, other: &Metrics) {
    assert_eq!(first.comm_rounds(), other.comm_rounds(), "{label}: rounds");
    assert_eq!(first.total_bits(), other.total_bits(), "{label}: bits");
    assert_eq!(first, other, "{label}: full metrics");
}

#[test]
fn route_is_radix_invariant() {
    let n = 49;
    let inst = workloads::balanced_random(n, 11).unwrap();
    assert_invariant_across_matrix("route", |mode| {
        let out = route_with_spec(&inst, spec_for_routing(n).with_exec(mode)).unwrap();
        (out.delivered, out.metrics)
    });
}

#[test]
fn route_optimized_is_radix_invariant() {
    let n = 49;
    let inst = workloads::balanced_random(n, 42).unwrap();
    assert_invariant_across_matrix("route_optimized", |mode| {
        let out = route_optimized_with_spec(&inst, spec_for_optimized(n).with_exec(mode)).unwrap();
        (out.delivered, out.metrics)
    });
}

#[test]
fn sort_is_radix_invariant_on_uniform_and_zipf() {
    let n = 36;
    for keys in [
        workloads::uniform_keys(n, 5),
        workloads::zipf_keys(n, 64, 9),
    ] {
        let runs_metrics = std::cell::RefCell::new(Vec::new());
        assert_invariant_across_matrix("sort", |mode| {
            let out = sort_with_spec(&keys, spec_for_sorting(n).with_exec(mode)).unwrap();
            runs_metrics.borrow_mut().push(out.metrics.clone());
            (out.batches, out.offsets, out.metrics)
        });
        let metrics = runs_metrics.into_inner();
        for m in &metrics[1..] {
            assert_metrics_identical("sort", &metrics[0], m);
        }
    }
}

#[test]
fn global_indices_is_radix_invariant() {
    let n = 16;
    let keys = workloads::duplicate_keys(n, 5, 3);
    assert_invariant_across_matrix("global_indices", |mode| {
        let out = global_indices_with_spec(&keys, spec_for_sorting(n).with_exec(mode)).unwrap();
        (out.indices, out.metrics)
    });
}

#[test]
fn select_rank_is_radix_invariant() {
    let n = 16;
    let keys = workloads::uniform_keys(n, 21);
    let rank = (n * n / 3) as u64;
    assert_invariant_across_matrix("select", |mode| {
        let out = select_rank_with_spec(&keys, rank, spec_for_sorting(n).with_exec(mode)).unwrap();
        (out.key, out.metrics)
    });
}

#[test]
fn mode_query_is_radix_invariant() {
    let n = 16;
    let keys = workloads::zipf_keys(n, 8, 13);
    assert_invariant_across_matrix("mode", |mode| {
        let out = mode_query_with_spec(&keys, spec_for_sorting(n).with_exec(mode)).unwrap();
        (out.key, out.count, out.metrics)
    });
}

#[test]
fn small_key_census_is_radix_invariant() {
    let n = 128;
    let keys: Vec<Vec<u64>> = (0..n)
        .map(|v| (0..n).map(|j| ((v * 31 + j * 17) % 2) as u64).collect())
        .collect();
    assert_invariant_across_matrix("census", |mode| {
        let out = small_key_census_with_spec(&keys, 1, spec_for_census(n).with_exec(mode)).unwrap();
        (out.totals, out.prefix, out.metrics)
    });
}
