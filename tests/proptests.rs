//! Randomized-but-deterministic property tests across the workspace:
//! routing delivers every valid instance, sorting agrees with the standard
//! library, and the balance invariants of the paper's lemmas hold on
//! random inputs.
//!
//! The cases are driven by seeded [`cc_rand::DetRng`] loops (the workspace
//! is dependency-free, so there is no proptest shrinker); every failure
//! reproduces from its printed case number.

use cc_rand::DetRng;
use congested_clique::core::routing::{route_deterministic, route_optimized, RoutingInstance};
use congested_clique::core::sorting::sort_keys;

#[test]
fn routing_delivers_arbitrary_valid_instances() {
    for case in 0..24u64 {
        let mut rng = DetRng::seed_from_u64(0xA11C_E500 ^ case);
        let n = rng.gen_range_usize(4..18);
        let seed = rng.next_u64();
        let cells = {
            let mut state = seed | 1;
            let mut cells = vec![0u32; n * n];
            let mut recv = vec![0u32; n];
            for i in 0..n {
                let mut sent = 0;
                while sent < n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let j = (state >> 33) as usize % n;
                    if recv[j] < n as u32 {
                        cells[i * n + j] += 1;
                        recv[j] += 1;
                        sent += 1;
                    } else if recv.iter().all(|&r| r >= n as u32) {
                        break;
                    }
                }
            }
            cells
        };
        let inst = RoutingInstance::from_demands(n, |i, j| cells[i * n + j]).unwrap();
        // Both routers verify deliveries internally.
        let det = route_deterministic(&inst).unwrap();
        assert!(det.metrics.comm_rounds() <= 16, "case {case}: n={n}");
        let opt = route_optimized(&inst).unwrap();
        assert!(opt.metrics.comm_rounds() <= 12, "case {case}: n={n}");
    }
}

#[test]
fn routing_handles_sparse_random_demands() {
    for case in 0..24u64 {
        let mut rng = DetRng::seed_from_u64(0x5AA5_0FF1 ^ case);
        let n = rng.gen_range_usize(4..14);
        let cells: Vec<u32> = (0..14 * 14)
            .map(|_| rng.gen_range_u64(0..2) as u32)
            .collect();
        let mut demands = vec![0u32; n * n];
        let mut recv = vec![0u32; n];
        let mut sent = vec![0u32; n];
        for i in 0..n {
            for j in 0..n {
                if cells[(i * n + j) % cells.len()] > 0 && recv[j] < n as u32 && sent[i] < n as u32
                {
                    demands[i * n + j] = 1;
                    recv[j] += 1;
                    sent[i] += 1;
                }
            }
        }
        let inst = RoutingInstance::from_demands(n, |i, j| demands[i * n + j]).unwrap();
        let det = route_deterministic(&inst).unwrap();
        assert!(det.metrics.comm_rounds() <= 16, "case {case}: n={n}");
    }
}

#[test]
fn sorting_agrees_with_std() {
    for case in 0..24u64 {
        let mut rng = DetRng::seed_from_u64(0x50_0071 ^ case);
        let n = rng.gen_range_usize(4..14);
        let universe = rng.gen_range_u64(1..1000);
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| rng.gen_range_u64(0..universe.max(1)))
                    .collect()
            })
            .collect();
        let out = sort_keys(&keys).unwrap();
        assert!(out.metrics.comm_rounds() <= 37, "case {case}: n={n}");
        let flat: Vec<u64> = out.batches.iter().flatten().map(|k| k.key).collect();
        let mut expected: Vec<u64> = keys.iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(flat, expected, "case {case}: n={n}");
    }
}

#[test]
fn sorting_handles_ragged_inputs() {
    for case in 0..24u64 {
        let mut rng = DetRng::seed_from_u64(0xFA66ED ^ case);
        let n = rng.gen_range_usize(4..12);
        let lens: Vec<usize> = (0..12).map(|_| rng.gen_range_usize(0..12)).collect();
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                (0..lens[i % lens.len()].min(n))
                    .map(|j| ((i * 31 + j * 7) % 50) as u64)
                    .collect()
            })
            .collect();
        let out = sort_keys(&keys).unwrap();
        let flat: Vec<u64> = out.batches.iter().flatten().map(|k| k.key).collect();
        let mut expected: Vec<u64> = keys.iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(flat, expected, "case {case}: n={n}");
    }
}
