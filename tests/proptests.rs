//! Property tests across the workspace: routing delivers every valid
//! instance, sorting agrees with the standard library, and the balance
//! invariants of the paper's lemmas hold on random inputs.

use congested_clique::core::routing::{route_deterministic, route_optimized, RoutingInstance};
use congested_clique::core::sorting::sort_keys;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routing_delivers_arbitrary_valid_instances(
        n in 4usize..18,
        seed in any::<u64>(),
    ) {
        let cells = {
            let mut state = seed | 1;
            let mut cells = vec![0u32; n * n];
            let mut recv = vec![0u32; n];
            for i in 0..n {
                let mut sent = 0;
                while sent < n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let j = (state >> 33) as usize % n;
                    if recv[j] < n as u32 {
                        cells[i * n + j] += 1;
                        recv[j] += 1;
                        sent += 1;
                    } else if recv.iter().all(|&r| r >= n as u32) {
                        break;
                    }
                }
            }
            cells
        };
        let inst = RoutingInstance::from_demands(n, |i, j| cells[i * n + j]).unwrap();
        // Both routers verify deliveries internally.
        let det = route_deterministic(&inst).unwrap();
        prop_assert!(det.metrics.comm_rounds() <= 16);
        let opt = route_optimized(&inst).unwrap();
        prop_assert!(opt.metrics.comm_rounds() <= 12);
    }

    #[test]
    fn routing_handles_sparse_random_demands(
        n in 4usize..14,
        cells in proptest::collection::vec(0u32..2, 14 * 14),
    ) {
        let mut demands = vec![0u32; n * n];
        let mut recv = vec![0u32; n];
        let mut sent = vec![0u32; n];
        for i in 0..n {
            for j in 0..n {
                if cells[(i * n + j) % cells.len()] > 0 && recv[j] < n as u32 && sent[i] < n as u32 {
                    demands[i * n + j] = 1;
                    recv[j] += 1;
                    sent[i] += 1;
                }
            }
        }
        let inst = RoutingInstance::from_demands(n, |i, j| demands[i * n + j]).unwrap();
        let det = route_deterministic(&inst).unwrap();
        prop_assert!(det.metrics.comm_rounds() <= 16);
    }

    #[test]
    fn sorting_agrees_with_std(
        n in 4usize..14,
        seed in any::<u64>(),
        universe in 1u64..1000,
    ) {
        let mut state = seed | 1;
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 33) % universe
                    })
                    .collect()
            })
            .collect();
        let out = sort_keys(&keys).unwrap();
        prop_assert!(out.metrics.comm_rounds() <= 37);
        let flat: Vec<u64> = out.batches.iter().flatten().map(|k| k.key).collect();
        let mut expected: Vec<u64> = keys.iter().flatten().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn sorting_handles_ragged_inputs(
        n in 4usize..12,
        lens in proptest::collection::vec(0usize..12, 12),
    ) {
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..lens[i % lens.len()].min(n)).map(|j| ((i * 31 + j * 7) % 50) as u64).collect())
            .collect();
        let out = sort_keys(&keys).unwrap();
        let flat: Vec<u64> = out.batches.iter().flatten().map(|k| k.key).collect();
        let mut expected: Vec<u64> = keys.iter().flatten().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(flat, expected);
    }
}
