//! End-to-end contract of the stats wire endpoint: a live [`NetServer`]
//! under a pipelined mixed workload answers [`CcClient::stats`] with a
//! registry snapshot whose per-stage latency histograms — queue wait,
//! session run, reply write — each hold **exactly one sample per
//! request the client sent**, under both serving modes. The snapshot is
//! exact, not approximate: every stage's bookkeeping completes before
//! the reply it describes reaches the client, so a probe sent after the
//! last reply can never under-count.

use congested_clique::obs::Snapshot;
use congested_clique::workloads::RequestMix;
use congested_clique::{CcClient, NetServer, NetServerConfig, Request, ServerConfig, ServingMode};

/// A mixed, multi-size workload whose requests all succeed — so served
/// counts, reply counts and histogram counts must line up exactly.
///
/// These are the timing-on contract: force the lifecycle stamps live so
/// the suite holds even when the environment sets `CC_OBS=off`.
fn workload() -> Vec<Request> {
    congested_clique::obs::set_timing_enabled(true);
    RequestMix::new(vec![6usize, 8, 9])
        .with_zipf_theta(0.6)
        // Sort, select, mode, indices — no census (it errors on tiny n).
        .with_weights([0, 3, 2, 2, 2, 0, 0])
        .generate(48, 4242)
}

fn server_config(mode: ServingMode) -> NetServerConfig {
    NetServerConfig::new(3)
        .with_fleet(
            ServerConfig::new(3)
                .with_queue_capacity(16)
                .with_coalesce_limit(4),
        )
        .with_serving_mode(mode)
}

/// Sums one per-shard counter family (`fleet.shard{i}.<field>`) across
/// every shard present in the snapshot.
fn fleet_total(snapshot: &Snapshot, field: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| {
            name.strip_prefix("fleet.shard")
                .and_then(|rest| rest.split_once('.'))
                .is_some_and(|(shard, suffix)| {
                    shard.chars().all(|c| c.is_ascii_digit()) && suffix == field
                })
        })
        .map(|&(_, v)| v)
        .sum()
}

fn stats_snapshot_is_exact(mode: ServingMode) {
    let requests = workload();
    let sent = requests.len() as u64;
    let server = NetServer::bind("127.0.0.1:0", server_config(mode)).expect("bind");
    let mut client = CcClient::connect(server.local_addr()).expect("connect");

    let results = client.pipeline(&requests).expect("pipeline");
    assert_eq!(results.len(), requests.len());
    assert!(results.iter().all(|r| r.is_ok()), "workload must succeed");

    let snapshot = client.stats().expect("stats roundtrip");

    // Counter exactness: every request was counted once, nothing was
    // rejected, and this connection is the only one the server saw.
    assert_eq!(fleet_total(&snapshot, "requests"), sent);
    assert_eq!(fleet_total(&snapshot, "rejected"), 0);
    assert_eq!(snapshot.counter("net.connections"), Some(1));
    // N data requests plus the stats probe itself.
    assert_eq!(snapshot.counter("net.frames_in"), Some(sent + 1));
    assert_eq!(snapshot.counter("net.frames_out"), Some(sent));

    // Per-stage histogram exactness: one sample per request at every
    // stage of the lifecycle, none from the stats probe.
    for stage in [
        "net.decode_ns",
        "fleet.queue_wait_ns",
        "fleet.session_run_ns",
        "net.write_ns",
    ] {
        let hist = snapshot.histogram(stage).expect(stage);
        assert_eq!(
            hist.count(),
            sent,
            "{stage}: want one sample per request under {mode:?}"
        );
    }

    // Queue gauges settled back to empty; the high-water mark saw at
    // least one queued job on some shard.
    let depth: i64 = snapshot
        .gauges
        .iter()
        .filter(|(name, _)| name.ends_with(".queue_depth"))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(depth, 0, "all queues drained");
    let peak: i64 = snapshot
        .gauges
        .iter()
        .filter(|(name, _)| name.ends_with(".peak_queue_depth"))
        .map(|&(_, v)| v)
        .sum();
    assert!(peak >= 1, "some shard must have held a job");

    // A second probe is monotone: nothing moved in between except the
    // probe's own frame accounting.
    let again = client.stats().expect("second stats roundtrip");
    assert_eq!(fleet_total(&again, "requests"), sent);
    assert_eq!(again.counter("net.frames_in"), Some(sent + 2));
    assert_eq!(
        again.histogram("net.write_ns").expect("write hist").count(),
        sent,
        "stats replies stay out of net.write_ns"
    );

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.fleet.requests(), sent);
}

#[test]
fn reactor_stats_snapshot_is_exact() {
    stats_snapshot_is_exact(ServingMode::Reactor);
}

#[test]
fn threaded_stats_snapshot_is_exact() {
    stats_snapshot_is_exact(ServingMode::ThreadPerConnection);
}

/// Interleaving: stats probes between pipelined bursts see strictly
/// increasing request counts, and the final totals still match.
#[test]
fn stats_probes_interleave_with_data_traffic() {
    let requests = workload();
    let server = NetServer::bind("127.0.0.1:0", server_config(ServingMode::Reactor)).expect("bind");
    let mut client = CcClient::connect(server.local_addr()).expect("connect");

    let mut served_so_far = 0u64;
    for chunk in requests.chunks(12) {
        let results = client.pipeline(chunk).expect("pipeline chunk");
        assert!(results.iter().all(|r| r.is_ok()));
        served_so_far += chunk.len() as u64;
        let snapshot = client.stats().expect("stats between bursts");
        assert_eq!(fleet_total(&snapshot, "requests"), served_so_far);
        assert_eq!(
            snapshot
                .histogram("fleet.session_run_ns")
                .expect("session hist")
                .count(),
            served_so_far
        );
    }
    assert_eq!(served_so_far, requests.len() as u64);
}
